"""Crash-safe sweep journaling, resume bit-identity, and worker retries."""

import json
import math

import pytest

from repro.beffio import BeffIOConfig
from repro.beffio.benchmark import BeffIOResult
from repro.beffio.journal import JournalMismatchError, SweepJournal, config_fingerprint
from repro.beffio.sweep import (
    CRASH_AFTER_ENV,
    SweepWorkerError,
    run_sweep,
)
from repro.cli import EXIT_SWEEP_WORKER_FAILED, main_beffio
from repro.faults import FaultPlan, LinkFault
from repro.reporting.export import write_json_atomic

CFG = BeffIOConfig(T=0.8, pattern_types=(0,))
PARTS = [2, 4]


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted sweep every resume/parallel test compares against."""
    return run_sweep("t3e", PARTS, CFG)


class TestJournal:
    def test_journal_records_every_partition(self, tmp_path, baseline):
        jdir = tmp_path / "journal"
        sweep = run_sweep("t3e", PARTS, CFG, journal=jdir)
        assert sweep.partition_values() == baseline.partition_values()
        assert (jdir / "manifest.json").exists()
        names = sorted(p.name for p in jdir.glob("partition_*.json"))
        assert names == ["partition_2.json", "partition_4.json"]
        # the journal round-trips results bit-exactly
        replayed = SweepJournal(jdir).completed()
        assert {n: r.b_eff_io for n, r in replayed.items()} == baseline.partition_values()

    def test_crash_then_resume_is_bit_identical(self, tmp_path, monkeypatch, baseline):
        jdir = tmp_path / "journal"
        monkeypatch.setenv(CRASH_AFTER_ENV, "1")
        with pytest.raises(RuntimeError, match="injected sweep crash"):
            run_sweep("t3e", PARTS, CFG, journal=jdir)
        # atomic writes: the interrupted sweep left exactly one complete
        # partition file and no temporaries
        assert sorted(p.name for p in jdir.glob("partition_*.json")) == [
            "partition_2.json"
        ]
        assert list(jdir.glob("*.tmp")) == []
        monkeypatch.delenv(CRASH_AFTER_ENV)
        resumed = run_sweep("t3e", PARTS, CFG, journal=jdir, resume=True)
        assert resumed.partition_values() == baseline.partition_values()
        assert resumed.system_b_eff_io == baseline.system_b_eff_io
        assert resumed.best_partition == baseline.best_partition

    def test_resume_replays_instead_of_rerunning(self, tmp_path, monkeypatch):
        # tamper with the journaled value: if resume re-ran the
        # partition the tampering would be overwritten
        jdir = tmp_path / "journal"
        monkeypatch.setenv(CRASH_AFTER_ENV, "1")
        with pytest.raises(RuntimeError):
            run_sweep("t3e", PARTS, CFG, journal=jdir)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        part = jdir / "partition_2.json"
        data = json.loads(part.read_text())
        data["b_eff_io"] = 123456.0
        part.write_text(json.dumps(data))
        resumed = run_sweep("t3e", PARTS, CFG, journal=jdir, resume=True)
        assert resumed.partition_values()[2] == 123456.0

    def test_resume_rejects_different_config(self, tmp_path):
        jdir = tmp_path / "journal"
        SweepJournal(jdir).start("t3e", config_fingerprint("t3e", CFG))
        other = BeffIOConfig(T=0.9, pattern_types=(0,))
        with pytest.raises(JournalMismatchError, match="different sweep"):
            run_sweep("t3e", PARTS, other, journal=jdir, resume=True)

    def test_resume_without_manifest_rejected(self, tmp_path):
        with pytest.raises(JournalMismatchError, match="nothing to resume"):
            run_sweep("t3e", PARTS, CFG, journal=tmp_path / "empty", resume=True)

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="journal"):
            run_sweep("t3e", PARTS, CFG, resume=True)

    def test_fresh_start_wipes_stale_partitions(self, tmp_path):
        jdir = tmp_path / "journal"
        jdir.mkdir()
        (jdir / "partition_999.json").write_text("{}")
        SweepJournal(jdir).start("t3e", "fp")
        assert not (jdir / "partition_999.json").exists()


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert config_fingerprint("t3e", CFG) == config_fingerprint(
            "t3e", BeffIOConfig(T=0.8, pattern_types=(0,))
        )

    def test_sensitive_to_machine_config_and_faults(self):
        fp = config_fingerprint("t3e", CFG)
        assert config_fingerprint("sp", CFG) != fp
        assert config_fingerprint("t3e", BeffIOConfig(T=0.9, pattern_types=(0,))) != fp
        faulted = BeffIOConfig(
            T=0.8, pattern_types=(0,),
            faults=FaultPlan(events=(LinkFault(0, 0.1, 0.2, 0.5),)),
        )
        assert config_fingerprint("t3e", faulted) != fp


def dummy_result(n):
    return BeffIOResult(
        nprocs=n, T=0.8, mpart=1, segment_size=1024,
        pattern_runs=[], type_results=[], method_values={}, b_eff_io=float(n),
    )


class FailingSpec:
    name = "broken"

    def run_beffio(self, n, config):
        raise ValueError("kaboom")


class FlakySpec:
    """Fails the first attempt of every partition, then succeeds."""

    name = "flaky"

    def __init__(self):
        self.calls = {}

    def run_beffio(self, n, config):
        self.calls[n] = self.calls.get(n, 0) + 1
        if self.calls[n] == 1:
            raise OSError("transient worker crash")
        return dummy_result(n)


class TestRetries:
    def test_worker_error_names_failing_partition(self):
        with pytest.raises(SweepWorkerError) as exc_info:
            run_sweep(FailingSpec(), [2], CFG, retries=1)
        message = str(exc_info.value)
        assert "partition nprocs=2" in message
        assert "machine 'broken'" in message
        assert "T=0.8" in message  # the failing partition's config
        assert "after 2 attempt(s)" in message
        assert "ValueError: kaboom" in message
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_retry_recovers_transient_failures(self):
        spec = FlakySpec()
        sweep = run_sweep(spec, [2, 4], CFG, retries=1)
        assert sweep.partition_values() == {2: 2.0, 4: 4.0}
        assert spec.calls == {2: 2, 4: 2}

    def test_zero_retries_fails_on_first_error(self):
        spec = FlakySpec()
        with pytest.raises(SweepWorkerError, match="after 1 attempt"):
            run_sweep(spec, [2], CFG, retries=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run_sweep("t3e", PARTS, CFG, retries=-1)

    def test_invalid_partition_excluded_from_system_max(self):
        class MixedSpec:
            name = "mixed"

            def run_beffio(self, n, config):
                if n == 2:
                    from repro.faults import RunValidity

                    bad = dummy_result(n)
                    return BeffIOResult(
                        nprocs=n, T=bad.T, mpart=bad.mpart,
                        segment_size=bad.segment_size, pattern_runs=[],
                        type_results=[], method_values={}, b_eff_io=math.nan,
                        validity=RunValidity("invalid", skipped=("x",)),
                    )
                return dummy_result(n)

        sweep = run_sweep(MixedSpec(), [2, 4], CFG)
        assert sweep.system_b_eff_io == 4.0
        assert sweep.best_partition == 4
        assert sweep.validity.state == "invalid"  # demoted, not poisoned


class TestParallelSweep:
    def test_parallel_matches_serial_bit_exactly(self, baseline):
        parallel = run_sweep("t3e", PARTS, CFG, jobs=2)
        assert parallel.partition_values() == baseline.partition_values()
        assert parallel.system_b_eff_io == baseline.system_b_eff_io


class TestCLI:
    def test_sweep_worker_failure_exits_nonzero(self, monkeypatch, capsys):
        def failing_sweep(*args, **kwargs):
            raise SweepWorkerError("partition nprocs=2 on machine 't3e' failed")

        monkeypatch.setattr("repro.beffio.sweep.run_sweep", failing_sweep)
        rc = main_beffio(
            ["--machine", "t3e", "--partitions", "2,4", "--T", "0.8", "--types", "0"]
        )
        assert rc == EXIT_SWEEP_WORKER_FAILED
        assert "repro-beffio: partition nprocs=2" in capsys.readouterr().err

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit) as exc_info:
            main_beffio(["--resume"])
        assert exc_info.value.code == 2


class TestAtomicWrites:
    def test_write_and_no_temp_leftovers(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_atomic(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        write_json_atomic(path, {"a": 2})  # overwrite in place
        assert json.loads(path.read_text()) == {"a": 2}
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_accepts_preserialized_string(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_atomic(path, '{"b": 3}')
        assert json.loads(path.read_text()) == {"b": 3}

    def test_failed_write_leaves_old_file_intact(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_atomic(path, {"a": 1})
        with pytest.raises(TypeError):
            write_json_atomic(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"a": 1}
        assert list(tmp_path.glob(".*.tmp")) == []
