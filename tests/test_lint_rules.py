"""repro-lint rule fixtures: one good/bad source pair per rule.

Each case feeds :func:`repro.devtools.lint.lint_source` a minimal
snippet that *must* trip exactly the rule under test, and a sibling
snippet applying the documented fix that must stay clean.  Suppression
directives and the baseline machinery get their own cases, and the CLI
is exercised end to end through :func:`main`.
"""

import dataclasses
import json
import textwrap

import pytest

from repro.devtools.lint import (
    DEFAULT_BASELINE,
    RULES,
    LintViolation,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    main,
    write_baseline,
)

#: a path inside the hot-module set (REPRO007 applies) but away from
#: the per-rule exemptions (randomness.py, reporting/export.py, ...)
HOT = "src/repro/sim/example.py"
#: a path outside sim//net/ so class-shape rules stay quiet
COLD = "src/repro/beff/example.py"


def rules_hit(source, path=COLD):
    return sorted({v.rule for v in lint_source(textwrap.dedent(source), path)})


# -- one (bad, good) pair per rule --------------------------------------

CASES = {
    "REPRO001": (
        """
        import random
        x = random.random()
        """,
        """
        from repro.sim.randomness import RandomStreams
        x = RandomStreams(7).stream("pattern").random()
        """,
    ),
    "REPRO002": (
        """
        import time
        t0 = time.perf_counter()
        """,
        """
        def measure(sim):
            return sim.now
        """,
    ),
    "REPRO003": (
        """
        def drain(pending):
            ready = set(pending)
            for item in ready:
                item.run()
        """,
        """
        def drain(pending):
            ready = set(pending)
            for item in sorted(ready):
                item.run()
        """,
    ),
    "REPRO004": (
        """
        def total(rates):
            return sum({r * 2.0 for r in rates})
        """,
        """
        def total(rates):
            return sum(sorted(r * 2.0 for r in rates))
        """,
    ),
    "REPRO005": (
        """
        def run(step):
            try:
                step()
            except Exception:
                pass
        """,
        """
        def run(step):
            try:
                step()
            except Exception as exc:
                raise RuntimeError("step failed") from exc
        """,
    ),
    "REPRO006": (
        """
        def collect(out=[]):
            out.append(1)
            return out
        """,
        """
        def collect(out=None):
            if out is None:
                out = []
            out.append(1)
            return out
        """,
    ),
    "REPRO008": (
        """
        import json
        def export(result, path):
            with open(path, "w") as fh:
                json.dump(result, fh)
        """,
        """
        from repro.reporting.export import write_json_atomic
        def export(result, path):
            write_json_atomic(path, result)
        """,
    ),
    "REPRO009": (
        """
        import os
        token = os.urandom(8)
        """,
        """
        from repro.sim.randomness import RandomStreams
        token = RandomStreams(7).stream("token").integers(0, 1 << 63)
        """,
    ),
    "REPRO010": (
        """
        def stream_key(name):
            return hash(name)
        """,
        """
        class Key:
            def __hash__(self):
                return hash((Key, 3))
        """,
    ),
    "REPRO011": (
        """
        import json
        def save(envelope, path):
            path.write_text(json.dumps(envelope.to_dict()))
        """,
        """
        from repro.reporting.export import write_json_atomic
        def save(envelope, path):
            write_json_atomic(path, envelope.to_dict())
        """,
    ),
    "REPRO012": (
        """
        # repro-lint: hot-kernel
        def totals(flows):
            out = {}
            for link, moved in flows:
                out[link] = out.get(link, 0.0) + moved
            return out
        """,
        """
        # repro-lint: hot-kernel
        import numpy as np
        def totals(cols, moved, n_links):
            return np.bincount(cols, weights=moved, minlength=n_links)
        """,
    ),
    "REPRO013": (
        """
        import json
        def record(journal_dir, row):
            (journal_dir / "manifest.json").write_text(json.dumps(row))
        """,
        """
        from repro.reporting.export import write_json_atomic
        def record(journal_dir, row):
            write_json_atomic(journal_dir / "manifest.json", row)
        """,
    ),
}


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_fires_on_bad_and_not_on_good(rule):
    bad, good = CASES[rule]
    assert rule in rules_hit(bad), f"{rule} missed its target pattern"
    assert rule not in rules_hit(good), f"{rule} false positive on the fix"


def test_repro007_requires_slots_in_hot_modules():
    bad = """
    class Packet:
        def __init__(self):
            self.size = 0
    """
    assert rules_hit(bad, HOT) == ["REPRO007"]
    # either spelling of the fix is accepted
    assert rules_hit("class Packet:\n    __slots__ = ('size',)\n", HOT) == []
    good_dc = """
    from dataclasses import dataclass
    @dataclass(frozen=True, slots=True)
    class Packet:
        size: int
    """
    assert rules_hit(good_dc, HOT) == []
    # exception classes never need __slots__
    assert rules_hit("class BadPacket(ValueError):\n    pass\n", HOT) == []
    # and the rule only applies to the hot sim//net/ modules
    assert "REPRO007" not in rules_hit(bad, COLD)


def test_repro011_targets_result_payloads_only():
    # a result-shaped payload fed to json.dump fires alongside REPRO008
    dump = """
    import json
    def save(result, fh):
        json.dump(result.to_dict(), fh)
    """
    assert "REPRO011" in rules_hit(dump)
    # envelope_for(...) output is a payload even without a telling name
    env = """
    from repro.runtime.envelope import envelope_for
    def save(r, path):
        path.write_text(str(envelope_for(r)))
    """
    assert "REPRO011" in rules_hit(env)
    # writes of non-result data stay REPRO008-only (atomicity concern)
    note = 'def save(path):\n    path.write_text("done")\n'
    assert rules_hit(note) == ["REPRO008"]
    # the atomic exporter itself is the one sanctioned writer
    impl = """
    import json
    def write_json_atomic(path, payload):
        json.dump(payload, open(path, "w"))
    """
    assert rules_hit(impl, "src/repro/reporting/export.py") == []


def test_repro012_is_opt_in_and_dict_only():
    accum = """
    def totals(flows):
        out = {}
        for link, moved in flows:
            out[link] = out.get(link, 0.0) + moved
        return out
    """
    # without the hot-kernel marker the pattern is ordinary code
    assert "REPRO012" not in rules_hit(accum)
    # += on a visibly-dict name fires too, including in while loops
    aug = """
    # repro-lint: hot-kernel
    def drain(queue):
        seen = dict()
        while queue:
            link = queue.pop()
            seen[link] += 1
    """
    assert "REPRO012" in rules_hit(aug)
    # numpy-style subscript updates are not dict accumulation: the
    # kernel's own `mult[pending] -= 1` loop must stay clean
    arr = """
    # repro-lint: hot-kernel
    import numpy as np
    def settle(residual, mult, bottleneck):
        pending = mult > 0
        while bool(pending.any()):
            residual[pending] = np.maximum(0.0, residual[pending] - bottleneck)
            mult[pending] -= 1
            pending = mult > 0
    """
    assert "REPRO012" not in rules_hit(arr)
    # inline suppression works as for every other rule
    silenced = """
    # repro-lint: hot-kernel
    def totals(flows):
        out = {}
        for link, moved in flows:
            out[link] = out.get(link, 0.0) + moved  # repro-lint: disable=REPRO012 -- cold path
        return out
    """
    assert "REPRO012" not in rules_hit(silenced)


def test_repro013_targets_store_and_journal_paths_only():
    # a write whose path mentions a store location fires even when no
    # result-payload name is around (the REPRO011 heuristic is blind here)
    bad = """
    import json
    def put(store, key, row):
        with open(store.objects_dir / key, "w") as fh:
            json.dump(row, fh)
    """
    assert "REPRO013" in rules_hit(bad)
    # ordinary writes away from store/journal paths stay REPRO013-clean
    # (REPRO008 still covers their atomicity)
    plain = """
    def save(path, text):
        path.write_text(text)
    """
    assert "REPRO013" not in rules_hit(plain)
    # the implementation home of write_json_atomic is exempt
    impl = """
    import json
    def write_json_atomic(path, payload):
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
    """
    assert rules_hit(impl, "src/repro/reporting/export.py") == []
    # string-literal paths count as addressing the store too
    literal = """
    import json
    def dump(rows):
        with open("results/journal/partition_2.json", "w") as fh:
            json.dump(rows, fh)
    """
    assert "REPRO013" in rules_hit(literal)


def test_repro014_flags_silent_swallows_in_runtime_only():
    RUNTIME = "src/repro/runtime/example.py"
    # a *narrow* handler that drops the error on the floor — exactly
    # what REPRO005 (broad-except rule) cannot see
    bad = """
    def touch(path):
        try:
            path.touch()
        except OSError:
            pass
    """
    assert "REPRO014" in rules_hit(bad, RUNTIME)
    # `continue` and constant `return` swallow just the same
    swallow_return = """
    def read(path):
        try:
            return path.read_text()
        except OSError:
            return None
    """
    assert "REPRO014" in rules_hit(swallow_return, RUNTIME)
    # the same code outside runtime/ is REPRO014-clean (REPRO005 still
    # owns broad handlers everywhere)
    assert "REPRO014" not in rules_hit(bad, COLD)
    # a handler that re-raises, tags validity, or does real work passes
    accounted = """
    def read(path, outcome):
        try:
            return path.read_text()
        except OSError as exc:
            outcome.validity = "degraded"
            raise
    """
    assert "REPRO014" not in rules_hit(accounted, RUNTIME)
    recorded = """
    def read(path, failures):
        try:
            return path.read_text()
        except OSError as exc:
            failures.append(exc)
            return None
    """
    assert "REPRO014" not in rules_hit(recorded, RUNTIME)
    # a broad swallow in runtime/ stays REPRO005's finding, not a
    # double report
    broad = """
    def run(step):
        try:
            step()
        except Exception:
            pass
    """
    assert rules_hit(broad, RUNTIME) == ["REPRO005"]


def test_rule_path_exemptions():
    rng = "import random\nx = random.random()\n"
    assert rules_hit(rng, "src/repro/sim/randomness.py") == []
    clock = "import time\nt = time.time()\n"
    assert rules_hit(clock, "benchmarks/test_bench_fluid.py") == []
    dump = "import json\njson.dump({}, open('x', 'w'))\n"
    assert rules_hit(dump, "src/repro/reporting/export.py") == []


def test_order_insensitive_consumers_are_clean():
    source = """
    def stats(ready):
        pending = set(ready)
        lo = min(pending)
        hi = max(x + 1 for x in pending)
        n = len(pending)
        both = sorted(pending | {0})
        return lo, hi, n, both
    """
    assert rules_hit(source) == []


def test_set_operator_and_comprehension_sources_detected():
    source = """
    def merge(a, b):
        return [x for x in set(a) | set(b)]
    """
    assert rules_hit(source) == ["REPRO003"]


def test_violation_render_and_locations():
    violations = lint_source("import random\ny = random.random()\n", "m.py")
    assert [v.rule for v in violations] == ["REPRO001"]
    v = violations[0]
    assert v.line == 2
    assert v.render().startswith("m.py:2:")
    assert "random.random" in v.message


# -- suppressions -------------------------------------------------------


def test_inline_suppression_silences_exactly_its_line_and_rule():
    src = (
        "import random\n"
        "a = random.random()  # repro-lint: disable=REPRO001 -- test fixture\n"
        "b = random.random()\n"
    )
    assert [v.line for v in lint_source(src, "m.py")] == [3]
    # a directive for a different rule does not apply
    wrong = "import random\nc = random.random()  # repro-lint: disable=REPRO002\n"
    assert [v.rule for v in lint_source(wrong, "m.py")] == ["REPRO001"]
    # disable=all silences everything on the line
    every = "import random\nd = random.random()  # repro-lint: disable=all\n"
    assert lint_source(every, "m.py") == []


# -- baseline -----------------------------------------------------------


def _violation(path, rule, line=1):
    return LintViolation(path=path, line=line, col=1, rule=rule, message=RULES[rule])


def test_apply_baseline_forgives_up_to_the_recorded_count():
    violations = [
        _violation("a.py", "REPRO001", line=1),
        _violation("a.py", "REPRO001", line=9),
        _violation("b.py", "REPRO003", line=2),
    ]
    fresh, suppressed = apply_baseline(violations, {"a.py::REPRO001": 1})
    assert suppressed == 1
    # the earliest line is forgiven first; the later one is new debt
    assert [(v.path, v.line) for v in fresh] == [("a.py", 9), ("b.py", 2)]
    fresh, suppressed = apply_baseline(violations, {})
    assert (len(fresh), suppressed) == (3, 0)


def test_baseline_round_trip(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(target, [_violation("a.py", "REPRO001")] * 2)
    loaded = load_baseline(target)
    assert loaded.v2 == {("REPRO001", "", ""): 2}
    assert not loaded.legacy
    data = json.loads(target.read_text())
    assert data["version"] == 2
    assert data["entries"] == [
        {"rule": "REPRO001", "qualname": "", "stmt": "", "count": 2,
         "reason": ""}
    ]
    missing = load_baseline(tmp_path / "missing.json")
    assert missing.v2 == {} and missing.v1 == {}


def test_baseline_v2_keys_on_qualname_and_stmt(tmp_path):
    """v2 entries survive line drift: the key ignores line numbers."""
    target = tmp_path / "baseline.json"
    tainted = LintViolation(
        path="a.py", line=3, col=1, rule="REPRO001",
        message=RULES["REPRO001"], qualname="a.f", stmt="deadbeef" * 2,
    )
    write_baseline(target, [tainted])
    drifted = dataclasses.replace(tainted, line=40)
    fresh, suppressed = apply_baseline([drifted], load_baseline(target))
    assert (fresh, suppressed) == ([], 1)


def test_baseline_write_preserves_prior_reasons(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(target, [_violation("a.py", "REPRO001")])
    data = json.loads(target.read_text())
    data["entries"][0]["reason"] = "carried debt"
    target.write_text(json.dumps(data))
    write_baseline(
        target, [_violation("a.py", "REPRO001")], prior=load_baseline(target)
    )
    assert json.loads(target.read_text())["entries"][0]["reason"] == (
        "carried debt"
    )


def test_baseline_v1_reader_still_applies(tmp_path, capsys):
    """Legacy per-file baselines load with a deprecation note."""
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps(
        {"version": 1, "entries": {"a.py::REPRO001": 1}}
    ))
    loaded = load_baseline(target)
    assert loaded.legacy and loaded.v1 == {"a.py::REPRO001": 1}
    assert "deprecated" in capsys.readouterr().err
    fresh, suppressed = apply_baseline([_violation("a.py", "REPRO001")], loaded)
    assert (fresh, suppressed) == ([], 1)


# -- CLI ----------------------------------------------------------------


def test_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")

    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out

    baseline = tmp_path / DEFAULT_BASELINE
    assert main([str(dirty), "--write-baseline", "--baseline", str(baseline)]) == 0
    # with the debt baselined the same tree passes ...
    assert main([str(dirty), "--baseline", str(baseline)]) == 0
    # ... but a *new* violation still fails
    dirty.write_text(dirty.read_text() + "y = random.random()\n")
    assert main([str(dirty), "--baseline", str(baseline)]) == 1

    assert main(["--list-rules"]) == 0
    assert "REPRO010" in capsys.readouterr().out
    assert main([str(tmp_path / "nope.py")]) == 2


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "one.py").write_text("import random\nx = random.random()\n")
    (pkg / "two.py").write_text("y = 2\n")
    violations = lint_paths([pkg])
    assert [v.rule for v in violations] == ["REPRO001"]


def test_repository_is_lint_clean():
    """The acceptance bar: repro-lint src/ is clean modulo the baseline.

    The checked-in v2 baseline carries exactly the store's REPRO014
    LRU/eviction race handlers plus the two poison-sidecar REPRO015
    writes (local resume state, never exported) — nothing else, and
    every entry must say why it is allowed to stay.
    """
    from repro.devtools.lint import run_engine

    baseline = load_baseline(DEFAULT_BASELINE)
    assert not baseline.legacy
    assert {(rule, qualname) for rule, qualname, _ in baseline.v2} == {
        ("REPRO014", "repro.runtime.store.RunStore._quarantine"),
        ("REPRO014", "repro.runtime.store.RunStore._touch"),
        ("REPRO014", "repro.runtime.store.RunStore.compact"),
        ("REPRO014", "repro.runtime.store.RunStore.total_bytes"),
        ("REPRO015", "repro.runtime.store.RunStore.record_poison"),
        ("REPRO015", "repro.runtime.sweep.SweepJournal.record_poison"),
    }
    assert all(baseline.reasons.get(key) for key in baseline.v2)
    report = run_engine(["src"])
    fresh, suppressed = apply_baseline(report.violations, baseline)
    assert fresh == []
    assert suppressed == sum(baseline.v2.values())
