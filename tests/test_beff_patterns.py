"""Tests for CommPattern construction and neighbor queries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.beff import CommPattern, make_patterns, random_patterns, ring_patterns
from repro.sim.randomness import RandomStreams


class TestCommPattern:
    def test_neighbors_in_ring(self):
        p = CommPattern("t", "ring", ((0, 1, 2, 3),))
        assert p.neighbors(0) == (3, 1)
        assert p.neighbors(3) == (2, 0)

    def test_two_ring_neighbors_coincide(self):
        p = CommPattern("t", "ring", ((0, 1),))
        assert p.neighbors(0) == (1, 1)

    def test_messages_per_iteration(self):
        p = CommPattern("t", "ring", ((0, 1), (2, 3, 4)))
        assert p.messages_per_iteration == 10

    def test_ring_size_of(self):
        p = CommPattern("t", "ring", ((0, 1), (2, 3, 4)))
        assert p.ring_size_of(1) == 2
        assert p.ring_size_of(4) == 3

    def test_unknown_rank(self):
        p = CommPattern("t", "ring", ((0, 1),))
        with pytest.raises(KeyError):
            p.neighbors(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommPattern("t", "weird", ((0, 1),))
        with pytest.raises(ValueError):
            CommPattern("t", "ring", ((0,),))
        with pytest.raises(ValueError):
            CommPattern("t", "ring", ((0, 1), (1, 2)))


class TestPatternFactories:
    def test_six_ring_patterns(self):
        pats = ring_patterns(16)
        assert len(pats) == 6
        assert [p.kind for p in pats] == ["ring"] * 6

    def test_six_random_patterns(self):
        pats = random_patterns(16)
        assert len(pats) == 6
        assert [p.kind for p in pats] == ["random"] * 6

    def test_make_patterns_twelve(self):
        pats = make_patterns(16)
        assert len(pats) == 12
        names = [p.name for p in pats]
        assert len(set(names)) == 12

    def test_random_patterns_reproducible(self):
        a = random_patterns(32, RandomStreams(5))
        b = random_patterns(32, RandomStreams(5))
        assert [p.rings for p in a] == [p.rings for p in b]

    def test_random_patterns_actually_permuted(self):
        ring = ring_patterns(64)[5].rings
        random = random_patterns(64, RandomStreams(1))[5].rings
        assert ring != random
        assert sorted(random[0]) == sorted(ring[0])

    def test_last_pattern_single_ring(self):
        pats = make_patterns(10)
        assert len(pats[5].rings) == 1
        assert len(pats[11].rings) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 300))
    def test_all_patterns_cover_all_ranks(self, n):
        for p in make_patterns(n):
            ranks = sorted(r for ring in p.rings for r in ring)
            assert ranks == list(range(n))
            # every rank has well-defined neighbors
            left, right = p.neighbors(0)
            assert 0 <= left < n and 0 <= right < n
