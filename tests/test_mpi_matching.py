"""Direct unit tests for the message-matching engine."""

import pytest

from repro.mpi.core import (
    ANY_SOURCE,
    ANY_TAG,
    Matcher,
    MpiError,
    Request,
    Status,
    _RecvRecord,
    _SendRecord,
)
from repro.sim import SimEvent, Simulator


def make_send(sim, src=0, tag=0, nbytes=10, data=None):
    arrival = SimEvent(sim)
    req = Request("send", SimEvent(sim))
    return _SendRecord(
        src=src, tag=tag, nbytes=nbytes, data=data, arrival=arrival, request=req
    ), arrival


def make_recv(sim, src=ANY_SOURCE, tag=ANY_TAG, capacity=None):
    req = Request("recv", SimEvent(sim))
    return _RecvRecord(src=src, tag=tag, capacity=capacity, request=req), req


class TestMatcher:
    def test_unexpected_then_post(self):
        sim = Simulator()
        m = Matcher()
        send, arrival = make_send(sim, src=3, tag=7, data="x")
        m.offer(send)
        assert len(m.unexpected) == 1
        recv, req = make_recv(sim, src=3, tag=7)
        m.post(recv)
        assert len(m.unexpected) == 0
        arrival.trigger(None)
        sim.run()
        assert req.done
        assert req.status == Status(source=3, tag=7, nbytes=10, data="x")

    def test_post_then_offer(self):
        sim = Simulator()
        m = Matcher()
        recv, req = make_recv(sim)
        m.post(recv)
        send, arrival = make_send(sim, src=1, tag=5)
        m.offer(send)
        assert len(m.posted) == 0
        arrival.trigger(None)
        sim.run()
        assert req.status.source == 1

    def test_fifo_among_unexpected(self):
        sim = Simulator()
        m = Matcher()
        s1, a1 = make_send(sim, src=0, tag=0, data="first")
        s2, a2 = make_send(sim, src=0, tag=0, data="second")
        m.offer(s1)
        m.offer(s2)
        recv, req = make_recv(sim, src=0, tag=0)
        m.post(recv)
        a1.trigger(None)
        a2.trigger(None)
        sim.run()
        assert req.status.data == "first"

    def test_tag_mismatch_skips(self):
        sim = Simulator()
        m = Matcher()
        s1, _a1 = make_send(sim, src=0, tag=1, data="wrong")
        s2, a2 = make_send(sim, src=0, tag=2, data="right")
        m.offer(s1)
        m.offer(s2)
        recv, req = make_recv(sim, src=0, tag=2)
        m.post(recv)
        a2.trigger(None)
        sim.run()
        assert req.status.data == "right"
        assert len(m.unexpected) == 1  # the tag-1 message still waits

    def test_source_wildcard_matches_any(self):
        sim = Simulator()
        m = Matcher()
        send, arrival = make_send(sim, src=9, tag=3)
        m.offer(send)
        recv, req = make_recv(sim, src=ANY_SOURCE, tag=3)
        m.post(recv)
        arrival.trigger(None)
        sim.run()
        assert req.status.source == 9

    def test_truncation_raises_at_bind(self):
        sim = Simulator()
        m = Matcher()
        send, _arrival = make_send(sim, nbytes=100)
        m.offer(send)
        recv, _req = make_recv(sim, capacity=10)
        with pytest.raises(MpiError, match="truncation"):
            m.post(recv)

    def test_rendezvous_start_called_on_match(self):
        sim = Simulator()
        m = Matcher()
        started = []
        send, _arrival = make_send(sim)
        send.rendezvous_start = lambda: started.append(True)
        recv, _req = make_recv(sim)
        m.post(recv)
        m.offer(send)
        assert started == [True]
        assert send.rendezvous_start is None  # consumed exactly once


class TestRequest:
    def test_test_probe(self):
        sim = Simulator()
        req = Request("send", SimEvent(sim))
        assert not req.test()
        req.event.trigger(None)
        assert req.test()
        assert req.done
