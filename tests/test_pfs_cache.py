"""Tests for the write-behind buffer cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pfs import BufferCache


class TestWrite:
    def test_absorbs_within_capacity(self):
        c = BufferCache(100)
        out = c.write("f", 0, 60)
        assert (out.in_place, out.absorbed, out.overflow) == (0, 60, 0)
        assert c.used == 60
        assert c.dirty_total == 60

    def test_overflow_when_full(self):
        c = BufferCache(100)
        c.write("f", 0, 100)
        out = c.write("f", 100, 150)
        assert out.absorbed == 0
        assert out.overflow == 50
        assert c.used == 100

    def test_rewrite_in_place_needs_no_space(self):
        c = BufferCache(100)
        c.write("f", 0, 100)
        out = c.write("f", 20, 80)
        assert out.in_place == 60
        assert out.absorbed == 0
        assert out.overflow == 0
        assert c.used == 100

    def test_dirty_bytes_pinned_against_eviction(self):
        c = BufferCache(100)
        c.write("f", 0, 100)  # all dirty
        out = c.write("g", 0, 50)
        assert out.absorbed == 0  # nothing evictable
        assert out.overflow == 50

    def test_clean_bytes_evicted_for_new_writes(self):
        c = BufferCache(100)
        c.write("f", 0, 100)
        while c.drain_next(1 << 20):
            pass  # all clean now
        out = c.write("g", 0, 50)
        assert out.absorbed == 50
        assert c.cached_bytes("f") == 50

    def test_zero_length(self):
        c = BufferCache(10)
        out = c.write("f", 5, 5)
        assert out == type(out)(0, 0, 0)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            BufferCache(10).write("f", 5, 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferCache(-1)


class TestDrain:
    def test_drain_marks_clean_keeps_cached(self):
        c = BufferCache(100)
        c.write("f", 0, 60)
        got = c.drain_next(100)
        assert got == ("f", 0, 60)
        assert c.dirty_total == 0
        assert c.cached_bytes("f") == 60

    def test_drain_respects_chunk_size(self):
        c = BufferCache(100)
        c.write("f", 0, 100)
        assert c.drain_next(30) == ("f", 0, 30)
        assert c.drain_next(30) == ("f", 30, 60)
        assert c.dirty_bytes("f") == 40

    def test_drain_empty_returns_none(self):
        assert BufferCache(10).drain_next(5) is None

    def test_drain_bad_chunk(self):
        with pytest.raises(ValueError):
            BufferCache(10).drain_next(0)

    def test_redirty_after_drain(self):
        c = BufferCache(100)
        c.write("f", 0, 50)
        c.drain_next(100)
        out = c.write("f", 0, 50)
        assert out.in_place == 50
        assert c.dirty_bytes("f") == 50


class TestRead:
    def test_hits_and_gaps(self):
        c = BufferCache(100)
        c.write("f", 10, 40)
        hit, gaps = c.read_hits("f", 0, 50)
        assert hit == 30
        assert gaps == [(0, 10), (40, 50)]

    def test_unknown_file_all_miss(self):
        c = BufferCache(100)
        hit, gaps = c.read_hits("nope", 0, 10)
        assert hit == 0
        assert gaps == [(0, 10)]

    def test_insert_clean_caches_fetched_data(self):
        c = BufferCache(100)
        assert c.insert_clean("f", 0, 40) == 40
        hit, gaps = c.read_hits("f", 0, 40)
        assert hit == 40 and gaps == []
        assert c.dirty_total == 0

    def test_insert_clean_bounded_by_capacity(self):
        c = BufferCache(50)
        c.write("f", 0, 50)  # dirty, pinned
        assert c.insert_clean("g", 0, 30) == 0

    def test_insert_clean_evicts_clean(self):
        c = BufferCache(50)
        c.insert_clean("f", 0, 50)
        assert c.insert_clean("g", 0, 30) == 30
        assert c.used == 50


class TestInvalidate:
    def test_invalidate_frees_space(self):
        c = BufferCache(100)
        c.write("f", 0, 80)
        c.invalidate_file("f")
        assert c.used == 0
        assert c.dirty_total == 0
        assert c.cached_bytes("f") == 0

    def test_invalidate_unknown_is_noop(self):
        BufferCache(10).invalidate_file("ghost")


class TestInvariantsProperty:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["write", "drain", "insert", "read"]),
                st.sampled_from(["a", "b"]),
                st.integers(0, 150),
                st.integers(1, 60),
            ),
            max_size=30,
        ),
        st.integers(30, 120),
    )
    def test_accounting_invariants(self, operations, capacity):
        c = BufferCache(capacity)
        for op, fid, start, length in operations:
            if op == "write":
                out = c.write(fid, start, start + length)
                assert out.in_place + out.absorbed + out.overflow == length
            elif op == "drain":
                c.drain_next(16)
            elif op == "insert":
                c.insert_clean(fid, start, start + length)
            else:
                hit, gaps = c.read_hits(fid, start, start + length)
                assert hit + sum(e - s for s, e in gaps) == length
            # core invariants
            assert 0 <= c.used <= capacity
            assert c.dirty_total <= c.used
            for f in ("a", "b"):
                assert c.dirty_bytes(f) <= c.cached_bytes(f)
            total = sum(c.cached_bytes(f) for f in ("a", "b"))
            assert total == c.used
