"""Tests for crossbar, clustered SMP, fat-tree and dragonfly topologies."""

import pytest

from repro.sim import FlowNetwork, Process, Simulator
from repro.topology import ClusteredSMP, Crossbar, Dragonfly, FatTree


def attach(topo):
    sim = Simulator()
    net = FlowNetwork(sim)
    topo.attach(net)
    return sim, net, topo


class TestCrossbar:
    def test_single_node_semantics(self):
        _, _, topo = attach(Crossbar(8, port_bw=100.0))
        assert topo.num_nodes == 1
        assert topo.node_of(5) == 0
        r = topo.route(0, 1)
        assert r.intra_node
        assert len(r.links) == 2

    def test_backplane_shared(self):
        sim, net, topo = attach(Crossbar(4, port_bw=100.0, backplane_bw=100.0))
        finish = {}

        def send(tag, src, dst):
            yield net.start_flow(list(topo.route(src, dst).links), 100.0)
            finish[tag] = sim.now

        Process(sim, send("a", 0, 1))
        Process(sim, send("b", 2, 3))
        sim.run_to_completion()
        # both flows share the 100 B/s backplane -> 2 s not 1 s
        assert finish["a"] == pytest.approx(2.0)

    def test_no_backplane_nonblocking(self):
        sim, net, topo = attach(Crossbar(4, port_bw=100.0))
        finish = {}

        def send(tag, src, dst):
            yield net.start_flow(list(topo.route(src, dst).links), 100.0)
            finish[tag] = sim.now

        Process(sim, send("a", 0, 1))
        Process(sim, send("b", 2, 3))
        sim.run_to_completion()
        assert finish["a"] == pytest.approx(1.0)
        assert finish["b"] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Crossbar(0, 1.0)
        with pytest.raises(ValueError):
            Crossbar(2, -1.0)
        with pytest.raises(ValueError):
            Crossbar(2, 1.0, backplane_bw=0.0)

    def test_double_attach_rejected(self):
        topo = Crossbar(2, 1.0)
        sim = Simulator()
        topo.attach(FlowNetwork(sim))
        with pytest.raises(RuntimeError):
            topo.attach(FlowNetwork(sim))


class TestClusteredSMP:
    def test_sequential_placement(self):
        topo = ClusteredSMP(4, 8, membus_bw=1000.0, nic_bw=100.0)
        assert topo.node_of(0) == 0
        assert topo.node_of(7) == 0
        assert topo.node_of(8) == 1
        assert topo.num_nodes == 4
        assert topo.nprocs == 32

    def test_round_robin_placement(self):
        topo = ClusteredSMP(4, 8, membus_bw=1000.0, nic_bw=100.0, placement="round-robin")
        assert topo.node_of(0) == 0
        assert topo.node_of(1) == 1
        assert topo.node_of(4) == 0
        assert topo.node_of(5) == 1

    def test_intra_node_route_skips_nic(self):
        _, _, topo = attach(ClusteredSMP(2, 4, membus_bw=1000.0, nic_bw=100.0))
        r = topo.route(0, 1)
        assert r.intra_node
        assert r.hops == 0
        assert len(r.links) == 3  # tx, membus, rx

    def test_inter_node_route_crosses_nics(self):
        _, _, topo = attach(ClusteredSMP(2, 4, membus_bw=1000.0, nic_bw=100.0))
        r = topo.route(0, 4)
        assert not r.intra_node
        assert len(r.links) == 6  # tx, mem, nicO, nicI, mem, rx

    def test_fabric_link_optional(self):
        _, _, topo = attach(
            ClusteredSMP(2, 2, membus_bw=1000.0, nic_bw=100.0, fabric_bw=150.0)
        )
        r = topo.route(0, 2)
        assert len(r.links) == 7

    def test_placement_changes_ring_locality(self):
        # Ring rank i -> i+1: sequential keeps 3 of 4 hops in-node;
        # round-robin makes every hop cross nodes.
        seq = ClusteredSMP(2, 4, membus_bw=1000.0, nic_bw=100.0)
        rr = ClusteredSMP(2, 4, membus_bw=1000.0, nic_bw=100.0, placement="round-robin")
        attach(seq)
        attach(rr)
        seq_cross = sum(
            not seq.route(i, (i + 1) % 8).intra_node for i in range(8)
        )
        rr_cross = sum(not rr.route(i, (i + 1) % 8).intra_node for i in range(8))
        assert seq_cross == 2
        assert rr_cross == 8

    def test_nic_contention_round_robin(self):
        sim, net, topo = attach(
            ClusteredSMP(2, 2, membus_bw=10000.0, nic_bw=100.0, placement="round-robin")
        )
        finish = {}

        def send(tag, src, dst):
            yield net.start_flow(list(topo.route(src, dst).links), 100.0)
            finish[tag] = sim.now

        # ranks 0,2 on node0; 1,3 on node1. 0->1 and 2->3 share node0 nic_out.
        Process(sim, send("a", 0, 1))
        Process(sim, send("b", 2, 3))
        sim.run_to_completion()
        assert finish["a"] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredSMP(0, 1, 1.0, 1.0)
        with pytest.raises(ValueError):
            ClusteredSMP(1, 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            ClusteredSMP(1, 1, 1.0, 1.0, placement="zigzag")


class TestFatTree:
    def test_switch_assignment(self):
        topo = FatTree(16, radix=4, downlink_bw=100.0)
        assert topo.num_switches == 4
        assert topo.switch_of(0) == 0
        assert topo.switch_of(15) == 3

    def test_same_switch_short_route(self):
        _, _, topo = attach(FatTree(8, radix=4, downlink_bw=100.0))
        r = topo.route(0, 1)
        assert r.hops == 1
        assert len(r.links) == 2

    def test_cross_switch_route(self):
        _, _, topo = attach(FatTree(8, radix=4, downlink_bw=100.0))
        r = topo.route(0, 4)
        assert r.hops == 3
        assert len(r.links) == 4

    def test_oversubscription_throttles_cross_traffic(self):
        sim, net, topo = attach(
            FatTree(8, radix=4, downlink_bw=100.0, oversubscription=4.0)
        )
        finish = {}

        def send(tag, src, dst):
            yield net.start_flow(list(topo.route(src, dst).links), 100.0)
            finish[tag] = sim.now

        # 4 hosts of switch 0 all send to switch 1: uplink = 4*100/4 = 100 shared.
        for i in range(4):
            Process(sim, send(i, i, 4 + i))
        sim.run_to_completion()
        for i in range(4):
            assert finish[i] == pytest.approx(4.0)

    def test_full_bisection_no_throttle(self):
        sim, net, topo = attach(FatTree(8, radix=4, downlink_bw=100.0))
        finish = {}

        def send(tag, src, dst):
            yield net.start_flow(list(topo.route(src, dst).links), 100.0)
            finish[tag] = sim.now

        for i in range(4):
            Process(sim, send(i, i, 4 + i))
        sim.run_to_completion()
        for i in range(4):
            assert finish[i] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTree(4, radix=0, downlink_bw=1.0)
        with pytest.raises(ValueError):
            FatTree(4, radix=2, downlink_bw=1.0, oversubscription=0.5)


def dragonfly16(**kw):
    """16 procs = 2 groups x 2 routers x 4 hosts."""
    args = dict(
        hosts_per_router=4,
        routers_per_group=2,
        host_bw=100.0,
        local_bw=200.0,
        global_bw=100.0,
    )
    args.update(kw)
    return Dragonfly(16, **args)


class TestDragonfly:
    def test_placement(self):
        topo = dragonfly16()
        assert topo.num_routers == 4
        assert topo.num_groups == 2
        assert topo.router_of(0) == 0 and topo.router_of(7) == 1
        assert topo.group_of(7) == 0 and topo.group_of(8) == 1

    def test_hop_counts(self):
        _, _, topo = attach(dragonfly16())
        assert topo.route(0, 1).hops == 1  # same router
        assert topo.route(0, 4).hops == 2  # same group, other router
        assert topo.route(0, 8).hops == 3  # cross group
        assert len(topo.route(0, 8).links) == 6

    def test_self_route_is_empty(self):
        _, _, topo = attach(dragonfly16())
        assert topo.route(3, 3).links == ()

    def test_global_taper_throttles_cross_group(self):
        sim, net, topo = attach(dragonfly16(global_bw=50.0))
        finish = {}

        def send(tag, src, dst):
            yield net.start_flow(list(topo.route(src, dst).links), 100.0)
            finish[tag] = sim.now

        # 4 hosts of group 0 all cross to group 1: the shared 50-wide
        # global link carries 4 flows -> 12.5 each -> 8 s per flow.
        for i in range(4):
            Process(sim, send(i, i, 8 + i))
        sim.run_to_completion()
        for i in range(4):
            assert finish[i] == pytest.approx(8.0)

    def test_intra_group_avoids_global_links(self):
        sim, net, topo = attach(dragonfly16(global_bw=50.0))
        finish = {}

        def send(tag, src, dst):
            yield net.start_flow(list(topo.route(src, dst).links), 100.0)
            finish[tag] = sim.now

        # same traffic kept inside the group never sees the taper:
        # 4 flows over the 200-wide router up/down pair -> 50 each.
        for i in range(4):
            Process(sim, send(i, i, 4 + i))
        sim.run_to_completion()
        for i in range(4):
            assert finish[i] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dragonfly(4, 0, 2, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            Dragonfly(4, 2, 2, 1.0, -1.0, 1.0)
