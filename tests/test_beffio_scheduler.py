"""Tests for the time-driven loops and the termination algorithm."""

import pytest

from repro.beffio.scheduler import (
    collective_timed_loop,
    local_timed_loop,
    pattern_time,
)
from repro.mpi import World
from repro.net import Fabric, NetParams
from repro.sim import Simulator, Sleep
from repro.topology import Torus
from repro.util import MB


def make_world(nprocs=4, latency=1e-6):
    sim = Simulator()
    fabric = Fabric(sim, Torus((nprocs,), link_bw=1000 * MB), NetParams(latency=latency))
    return World(fabric)


class TestLocalLoop:
    def test_stops_after_budget(self):
        world = make_world(1)
        reps_seen = []

        def program(comm):
            def body():
                yield Sleep(0.1)

            reps = yield from local_timed_loop(comm, t_end=0.35, body=body)
            reps_seen.append(reps)

        world.run(program)
        # 0.1 per rep; after rep 4 the clock (0.4) passes 0.35
        assert reps_seen == [4]

    def test_at_least_one_rep(self):
        world = make_world(1)
        reps_seen = []

        def program(comm):
            def body():
                yield Sleep(10.0)

            reps = yield from local_timed_loop(comm, t_end=0.0, body=body)
            reps_seen.append(reps)

        world.run(program)
        assert reps_seen == [1]

    def test_max_reps_cap(self):
        world = make_world(1)
        reps_seen = []

        def program(comm):
            def body():
                yield Sleep(0.01)

            reps = yield from local_timed_loop(comm, t_end=100.0, body=body, max_reps=3)
            reps_seen.append(reps)

        world.run(program)
        assert reps_seen == [3]

    def test_invalid_max_reps(self):
        world = make_world(1)

        def program(comm):
            yield from local_timed_loop(comm, 1.0, lambda: iter(()), max_reps=0)

        with pytest.raises(ValueError):
            world.run(program)


class TestCollectiveLoop:
    def test_all_ranks_stop_after_same_iteration(self):
        world = make_world(4)
        reps_seen = {}

        def program(comm):
            def body():
                # rank-dependent body time: without the collective
                # decision, ranks would run different rep counts
                yield Sleep(0.05 + 0.01 * comm.rank)

            reps = yield from collective_timed_loop(comm, t_end=0.2, body=body)
            reps_seen[comm.rank] = reps

        world.run(program)
        assert len(set(reps_seen.values())) == 1

    def test_root_clock_decides(self):
        world = make_world(2)
        reps_seen = []

        def program(comm):
            def body():
                yield Sleep(0.1)

            reps = yield from collective_timed_loop(comm, t_end=0.25, body=body)
            if comm.rank == 0:
                reps_seen.append(reps)

        world.run(program)
        assert reps_seen[0] >= 2

    def test_max_reps_short_circuits_decision(self):
        world = make_world(2)
        reps_seen = []

        def program(comm):
            def body():
                yield Sleep(0.01)

            reps = yield from collective_timed_loop(
                comm, t_end=100.0, body=body, max_reps=2
            )
            if comm.rank == 0:
                reps_seen.append(reps)

        world.run(program)
        assert reps_seen == [2]

    def test_termination_round_costs_time(self):
        # The Sec. 5.4 point: each iteration pays barrier + bcast.
        def run(latency):
            world = make_world(8, latency=latency)
            done = []

            def program(comm):
                def body():
                    yield Sleep(0.001)

                yield from collective_timed_loop(comm, t_end=0.01, body=body, max_reps=5)
                done.append(comm.wtime())

            world.run(program)
            return max(done)

        cheap = run(latency=1e-7)
        pricey = run(latency=200e-6)
        assert pricey > cheap * 1.5


class TestPatternTime:
    def test_formula(self):
        # T/3 * U/sumU
        assert pattern_time(900, 4, 64) == pytest.approx(900 / 3 * 4 / 64)
        assert pattern_time(900, 0, 64) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pattern_time(-1, 4, 64)
        with pytest.raises(ValueError):
            pattern_time(900, 4, 0)
