"""Tests for the ASCII table renderer."""

import pytest

from repro.util import Table


class TestTable:
    def test_render_alignment(self):
        t = Table(["system", "b_eff"], title="Table 1")
        t.add_row("Cray T3E", 19919)
        t.add_row("NEC SX-5", 5439)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "Table 1"
        assert "system" in lines[1] and "b_eff" in lines[1]
        # all data lines have equal width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_none_renders_empty(self):
        t = Table(["a", "b"])
        t.add_row(None, 1)
        assert t.rows[0][0] == ""

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_extend(self):
        t = Table(["a"])
        t.extend([[1], [2], [3]])
        assert len(t.rows) == 3

    def test_no_title_header_first(self):
        t = Table(["col"])
        t.add_row("x")
        assert t.render().splitlines()[0].strip() == "col"

    def test_str_matches_render(self):
        t = Table(["col"])
        t.add_row("value")
        assert str(t) == t.render()
