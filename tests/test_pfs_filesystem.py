"""Tests for the striped filesystem front end."""

import pytest

from repro.pfs import FileSystem, PFSConfig
from repro.sim import Process, Simulator
from repro.util import KB, MB


def make_fs(**over):
    cfg = dict(
        num_servers=4,
        stripe_unit=100,
        disk_bw=100.0,
        ingest_bw=10_000.0,
        seek_time=0.0,
        request_overhead=0.0,
        disk_block=10,
        cache_bytes=100_000,
        client_bw=1_000.0,
        server_net_bw=1_000.0,
        call_overhead=0.0,
    )
    cfg.update(over)
    sim = Simulator()
    return sim, FileSystem(sim, PFSConfig(**cfg))


def run_one(sim, gen):
    out = []

    def wrapper():
        result = yield from gen
        out.append((sim.now, result))

    Process(sim, wrapper())
    sim.run_to_completion()
    return out[0]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "over",
        [
            {"num_servers": 0},
            {"stripe_unit": 0},
            {"client_bw": 0.0},
            {"server_net_bw": -1.0},
            {"call_overhead": -1.0},
        ],
    )
    def test_rejects(self, over):
        with pytest.raises(ValueError):
            make_fs(**over)

    def test_aggregate_disk_bw(self):
        _, fs = make_fs()
        assert fs.config.aggregate_disk_bw == 400.0


class TestNamespace:
    def test_open_creates_once(self):
        _, fs = make_fs()
        f1 = fs.open("data")
        f2 = fs.open("data")
        assert f1 is f2
        assert fs.exists("data")

    def test_delete_invalidates_cache(self):
        sim, fs = make_fs()
        f = fs.open("data")
        run_one(sim, fs.write(0, f, 0, 400))
        fs.delete("data")
        assert not fs.exists("data")
        assert all(s.cache.cached_bytes(f.file_id) == 0 for s in fs.servers)


class TestStriping:
    def test_round_robin_server_mapping(self):
        _, fs = make_fs()
        assert fs.server_of(0) == 0
        assert fs.server_of(99) == 0
        assert fs.server_of(100) == 1
        assert fs.server_of(400) == 0

    def test_split_extent_single_stripe(self):
        _, fs = make_fs()
        assert fs.split_extent(10, 60) == {0: [(10, 60)]}

    def test_split_extent_across_servers(self):
        _, fs = make_fs()
        split = fs.split_extent(50, 350)
        assert split == {
            0: [(50, 100)],
            1: [(100, 200)],
            2: [(200, 300)],
            3: [(300, 350)],
        }

    def test_split_extent_wraps_around(self):
        _, fs = make_fs(num_servers=2)
        split = fs.split_extent(0, 400)
        assert split == {0: [(0, 100), (200, 300)], 1: [(100, 200), (300, 400)]}

    def test_inverted_extent_rejected(self):
        _, fs = make_fs()
        with pytest.raises(ValueError):
            fs.split_extent(10, 0)


class TestDataPath:
    def test_write_updates_size(self):
        sim, fs = make_fs()
        f = fs.open("data")
        _, nbytes = run_one(sim, fs.write(0, f, 0, 350))
        assert nbytes == 350
        assert f.size == 350

    def test_write_time_bounded_by_client_link(self):
        sim, fs = make_fs()
        f = fs.open("data")
        t, _ = run_one(sim, fs.write(0, f, 0, 1000))
        # client link 1000 B/s is the bottleneck (4 servers absorb at
        # ingest speed): ~1 s on the wire, epsilon in cache
        assert t == pytest.approx(1.0, rel=0.2)

    def test_parallel_clients_saturate_servers(self):
        # many clients, server network links become the constraint
        sim, fs = make_fs(num_servers=1, client_bw=10_000.0, server_net_bw=1_000.0)
        f = fs.open("data")
        done = []

        def client(cid):
            yield from fs.write(cid, f, cid * 1000, 1000)
            done.append(sim.now)

        for cid in range(4):
            Process(sim, client(cid))
        sim.run_to_completion()
        # 4000 bytes through one 1000 B/s server link -> ~4 s
        assert max(done) == pytest.approx(4.0, rel=0.1)

    def test_read_returns_bytes(self):
        sim, fs = make_fs()
        f = fs.open("data")

        def session():
            yield from fs.write(0, f, 0, 400)
            got = yield from fs.read(0, f, 0, 400)
            return got

        _, got = run_one(sim, session())
        assert got == 400

    def test_sync_forces_disk_residency(self):
        sim, fs = make_fs()
        f = fs.open("data")

        def session():
            yield from fs.write(0, f, 0, 400)
            yield from fs.sync(0, f)

        run_one(sim, session())
        assert fs.total_dirty == 0
        assert fs.bytes_to_disk == 400

    def test_call_overhead_applied(self):
        sim, fs = make_fs(call_overhead=0.25)
        f = fs.open("data")
        t, _ = run_one(sim, fs.write(0, f, 0, 1))
        assert t >= 0.25

    def test_empty_extent_list(self):
        sim, fs = make_fs()
        f = fs.open("data")
        t, got = run_one(sim, fs.submit_io(0, f, "write", []))
        assert got == 0

    def test_bad_kind_rejected(self):
        sim, fs = make_fs()
        f = fs.open("data")
        with pytest.raises(ValueError):
            run_one(sim, fs.submit_io(0, f, "append", [(0, 10)]))


class TestCacheVsDiskBandwidth:
    def test_small_dataset_reports_cache_speed(self):
        # dataset << cache: apparent bandwidth ~ network/ingest, far
        # above disk speed (the paper's Sec. 5.4 warning)
        sim, fs = make_fs(cache_bytes=1_000_000, disk_bw=10.0)
        f = fs.open("data")
        t, _ = run_one(sim, fs.write(0, f, 0, 1000))
        apparent_bw = 1000 / t
        assert apparent_bw > 10 * fs.config.aggregate_disk_bw

    def test_large_dataset_throttled_to_disk_speed(self):
        sim, fs = make_fs(cache_bytes=400, disk_bw=10.0, num_servers=1)
        f = fs.open("data")

        def session():
            yield from fs.write(0, f, 0, 10_000)
            yield from fs.sync(0, f)

        t, _ = run_one(sim, session())
        apparent_bw = 10_000 / t
        assert apparent_bw == pytest.approx(10.0, rel=0.2)
