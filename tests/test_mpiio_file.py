"""Tests for the MPI-IO file object: pointers, collectives, two-phase."""

import pytest

from repro.mpi import World
from repro.mpiio import IOFile, StridedView, open_file
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import KB, MB


def make_env(nprocs=4, **fs_over):
    sim = Simulator()
    fabric = Fabric(
        sim, Torus((nprocs,), link_bw=1000 * MB),
        NetParams(latency=1e-6, msg_rate_cap=500 * MB),
    )
    world = World(fabric)
    cfg = dict(
        num_servers=4,
        stripe_unit=64 * KB,
        disk_bw=50 * MB,
        ingest_bw=500 * MB,
        seek_time=5e-3,
        request_overhead=1e-4,
        disk_block=4 * KB,
        cache_bytes=64 * MB,
        client_bw=200 * MB,
        server_net_bw=200 * MB,
        call_overhead=5e-5,
    )
    cfg.update(fs_over)
    fs = FileSystem(sim, PFSConfig(**cfg))
    return world, fs


class TestPointers:
    def test_individual_pointer_advances(self):
        world, fs = make_env(2)
        f = open_file(world.comm_world, fs, "data")

        def program(comm):
            if comm.rank == 0:
                yield from f.write(0, 1000)
                assert f.tell(0) == 1000
                yield from f.write(0, 500)
                assert f.tell(0) == 1500
            else:
                return
                yield  # pragma: no cover

        world.run(program)
        assert f.pfsfile.size == 1500

    def test_seek_and_set_view_reset(self):
        world, fs = make_env(2)
        f = open_file(world.comm_world, fs, "data")
        f.seek(0, 4096)
        assert f.tell(0) == 4096
        f.set_view(0, StridedView(0, 1024, 2048))
        assert f.tell(0) == 0

    def test_negative_seek_rejected(self):
        world, fs = make_env(2)
        f = open_file(world.comm_world, fs, "data")
        with pytest.raises(ValueError):
            f.seek(0, -1)

    def test_shared_pointer_advances_atomically(self):
        world, fs = make_env(4)
        f = open_file(world.comm_world, fs, "data")

        def program(comm):
            yield from f.write_shared(comm.rank, 1000)

        world.run(program)
        assert f._shared_fp == 4000
        assert f.pfsfile.size == 4000

    def test_write_at_leaves_pointer(self):
        world, fs = make_env(2)
        f = open_file(world.comm_world, fs, "data")

        def program(comm):
            if comm.rank == 0:
                yield from f.write_at(0, 10_000, 100)
            else:
                return
                yield  # pragma: no cover

        world.run(program)
        assert f.tell(0) == 0
        assert f.pfsfile.size == 10_100


class TestStridedNoncollective:
    def test_strided_view_scatters_on_disk(self):
        world, fs = make_env(2)
        f = open_file(world.comm_world, fs, "data")
        f.set_view(0, StridedView(0, 1024, 2048))
        f.set_view(1, StridedView(1024, 1024, 2048))

        def program(comm):
            yield from f.write(comm.rank, 4096)

        world.run(program)
        # 2 ranks x 4096 bytes interleaved -> file spans 8192 bytes
        assert f.pfsfile.size == 8192


class TestCollectives:
    def test_write_all_transfers_everything(self):
        world, fs = make_env(4)
        f = open_file(world.comm_world, fs, "data")
        for r in range(4):
            f.set_view(r, StridedView(r * 1024, 1024, 4 * 1024))

        def program(comm):
            total = yield from f.write_all(comm.rank, 16 * 1024)
            return total

        results = world.run(program)
        assert results == [64 * 1024] * 4
        assert f.pfsfile.size == 64 * 1024
        assert f.bytes_written == 64 * 1024

    def test_collective_faster_than_noncollective_for_small_chunks(self):
        # The pattern type 0 vs type 1-style contrast: strided 1 kB
        # chunks via two-phase beat per-chunk noncollective calls.
        def run(collective):
            world, fs = make_env(4)
            f = open_file(world.comm_world, fs, "data")
            for r in range(4):
                f.set_view(r, StridedView(r * KB, KB, 4 * KB))
            t = []

            def program(comm):
                if collective:
                    yield from f.write_all(comm.rank, 256 * KB)
                else:
                    for _ in range(256):
                        yield from f.write(comm.rank, KB)
                t.append(comm.wtime())

            world.run(program)
            return max(t)

        assert run(collective=True) < run(collective=False)

    def test_read_all_roundtrip(self):
        world, fs = make_env(4)
        f = open_file(world.comm_world, fs, "data")

        def program(comm):
            f.seek(comm.rank, comm.rank * 64 * KB)
            yield from f.write_all(comm.rank, 64 * KB)
            f.seek(comm.rank, comm.rank * 64 * KB)
            got = yield from f.read_all(comm.rank, 64 * KB)
            return got

        results = world.run(program)
        assert results == [256 * KB] * 4
        assert f.bytes_read == 256 * KB

    def test_write_ordered_rank_order_blocks(self):
        world, fs = make_env(4)
        f = open_file(world.comm_world, fs, "data")

        def program(comm):
            yield from f.write_ordered(comm.rank, (comm.rank + 1) * 1000)

        world.run(program)
        # 1000+2000+3000+4000 contiguous from the shared pointer
        assert f._shared_fp == 10_000
        assert f.pfsfile.size == 10_000

    def test_sync_collective_flushes(self):
        world, fs = make_env(4)
        f = open_file(world.comm_world, fs, "data")

        def program(comm):
            yield from f.write(comm.rank, 100 * KB)
            yield from f.sync(comm.rank)

        world.run(program)
        assert fs.total_dirty == 0

    def test_close_marks_closed(self):
        world, fs = make_env(2)
        f = open_file(world.comm_world, fs, "data")

        def program(comm):
            yield from f.write(comm.rank, KB)
            yield from f.close(comm.rank)

        world.run(program)
        assert f.closed
        with pytest.raises(RuntimeError):
            next(f.write(0, 10))

    def test_cb_buffer_validation(self):
        world, fs = make_env(2)
        with pytest.raises(ValueError):
            IOFile(world.comm_world, fs, "x", cb_buffer=0)

    def test_aggregator_count_clamped(self):
        world, fs = make_env(2)
        f = IOFile(world.comm_world, fs, "x", num_aggregators=100)
        assert f.num_aggregators == 2
        f2 = IOFile(world.comm_world, fs, "y", num_aggregators=0)
        assert f2.num_aggregators == 1


class TestSeparateFiles:
    def test_one_file_per_rank_via_singleton_comms(self):
        world, fs = make_env(4)
        subcomms = [world.comm_world.create([r]) for r in range(4)]
        files = [open_file(subcomms[r], fs, f"part.{r}") for r in range(4)]

        def program(comm):
            f = files[comm.rank]
            yield from f.write(0, 32 * KB)
            yield from f.close(0)

        world.run(program)
        for r in range(4):
            assert files[r].pfsfile.size == 32 * KB
            assert files[r].closed
