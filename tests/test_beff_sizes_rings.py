"""Tests for the message-size ladder and ring partitions."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.beff import lmax_for, message_sizes, ring_partition, ring_pattern_sizes
from repro.util import GB, KB, MB


class TestLmax:
    def test_memory_over_128(self):
        assert lmax_for(128 * MB) == MB

    def test_t3e_value(self):
        # T3E/900-512: 128 MB per PE -> L_max = 1 MB (Table 1)
        assert lmax_for(128 * MB) == 1 * MB

    def test_sr8000_value(self):
        # SR 8000: 8 GB node / 8 procs -> 1 GB per proc -> 8 MB (Table 1)
        assert lmax_for(1 * GB) == 8 * MB

    def test_32bit_cap(self):
        assert lmax_for(64 * GB, int_bits=32) == 128 * MB
        assert lmax_for(64 * GB, int_bits=64) == 512 * MB

    def test_too_small_memory_rejected(self):
        with pytest.raises(ValueError):
            lmax_for(4 * KB)


class TestMessageSizes:
    def test_twenty_one_values(self):
        sizes = message_sizes(128 * MB)
        assert len(sizes) == 21

    def test_fixed_ladder(self):
        sizes = message_sizes(128 * MB)
        assert sizes[:13] == [1 << i for i in range(13)]

    def test_top_is_lmax(self):
        sizes = message_sizes(128 * MB)
        assert sizes[-1] == MB

    def test_geometric_spacing_above_4k(self):
        sizes = message_sizes(128 * MB)
        upper = sizes[12:]  # 4kB .. Lmax, 9 values
        ratios = [upper[i + 1] / upper[i] for i in range(8)]
        expected = (MB / (4 * KB)) ** (1 / 8)
        for r in ratios:
            assert r == pytest.approx(expected, rel=0.02)

    def test_strictly_increasing(self):
        sizes = message_sizes(2 * GB)
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    @given(st.integers(20, 40))
    def test_any_memory_size_well_formed(self, log2_mem):
        sizes = message_sizes(1 << log2_mem)
        assert len(sizes) == 21
        assert sizes[-1] == (1 << log2_mem) // 128
        assert all(s >= 1 for s in sizes)


class TestRingPatternSizes:
    def test_pattern1_even(self):
        assert ring_pattern_sizes(8, 1) == [2, 2, 2, 2]

    def test_pattern1_odd_last_ring_three(self):
        # paper example: 7 processes -> rings {0,1} {2,3} {4,5,6}
        assert ring_pattern_sizes(7, 1) == [2, 2, 3]

    def test_pattern1_minimal(self):
        assert ring_pattern_sizes(2, 1) == [2]
        assert ring_pattern_sizes(3, 1) == [3]

    def test_pattern2_small_counts_single_ring(self):
        for n in range(2, 8):
            assert ring_pattern_sizes(n, 2) == [n]

    @pytest.mark.parametrize(
        "n,expected",
        [
            (8, [4, 4]),
            (9, [5, 4]),    # "1*5"
            (10, [5, 5]),   # "2*5"
            (11, [4, 4, 3]),  # "1*3"
            (16, [4, 4, 4, 4]),
        ],
    )
    def test_pattern2_remainders(self, n, expected):
        assert ring_pattern_sizes(n, 2) == expected

    def test_pattern3_sizes_in_seven_to_nine(self):
        for n in range(29, 200, 7):
            sizes = ring_pattern_sizes(n, 3)
            assert all(7 <= s <= 9 for s in sizes), (n, sizes)

    def test_pattern4_standard(self):
        # min(max(16, n/4), n)
        sizes = ring_pattern_sizes(128, 4)
        assert all(abs(s - 32) <= 1 for s in sizes)
        assert ring_pattern_sizes(8, 4) == [8]

    def test_pattern5_standard(self):
        sizes = ring_pattern_sizes(128, 5)
        assert sizes == [64, 64]
        assert ring_pattern_sizes(16, 5) == [16]

    def test_pattern6_one_ring(self):
        assert ring_pattern_sizes(100, 6) == [100]

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_pattern_sizes(1, 1)
        with pytest.raises(ValueError):
            ring_pattern_sizes(8, 0)
        with pytest.raises(ValueError):
            ring_pattern_sizes(8, 7)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(2, 600), st.integers(1, 6))
    def test_partition_properties(self, n, pattern):
        sizes = ring_pattern_sizes(n, pattern)
        assert sum(sizes) == n
        assert all(s >= 2 for s in sizes)
        if pattern >= 2:
            # nearly equal: min and max differ by at most 1
            assert max(sizes) - min(sizes) <= 1


class TestRingPartition:
    def test_consecutive_blocks(self):
        rings = ring_partition(7, 1)
        assert rings == [[0, 1], [2, 3], [4, 5, 6]]

    def test_covers_all_ranks(self):
        rings = ring_partition(50, 3)
        flat = [r for ring in rings for r in ring]
        assert flat == list(range(50))
