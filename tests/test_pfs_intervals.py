"""Unit + model-based property tests for IntervalSet."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pfs import IntervalSet


class TestAdd:
    def test_single(self):
        s = IntervalSet()
        assert s.add(0, 10) == 10
        assert s.intervals() == [(0, 10)]
        assert s.total == 10

    def test_disjoint(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        assert s.intervals() == [(0, 10), (20, 30)]

    def test_overlap_merges(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.add(5, 15) == 5
        assert s.intervals() == [(0, 15)]

    def test_adjacent_coalesces(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert s.intervals() == [(0, 20)]
        assert len(s) == 1

    def test_spanning_add_merges_many(self):
        s = IntervalSet()
        for i in range(5):
            s.add(i * 10, i * 10 + 5)
        s.add(0, 100)
        assert s.intervals() == [(0, 100)]

    def test_duplicate_add_adds_nothing(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.add(2, 8) == 0

    def test_empty_add(self):
        s = IntervalSet()
        assert s.add(5, 5) == 0
        assert not s

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add(10, 0)


class TestRemove:
    def test_exact(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.remove(0, 10) == 10
        assert not s

    def test_middle_splits(self):
        s = IntervalSet()
        s.add(0, 30)
        assert s.remove(10, 20) == 10
        assert s.intervals() == [(0, 10), (20, 30)]

    def test_left_trim(self):
        s = IntervalSet()
        s.add(10, 30)
        assert s.remove(0, 20) == 10
        assert s.intervals() == [(20, 30)]

    def test_remove_nothing(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.remove(20, 30) == 0
        assert s.remove(10, 10) == 0

    def test_remove_across_intervals(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        s.add(40, 50)
        assert s.remove(5, 45) == 20
        assert s.intervals() == [(0, 5), (45, 50)]

    def test_adjacent_boundary_untouched(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.remove(10, 20) == 0
        assert s.intervals() == [(0, 10)]

    def test_inverted_rejected(self):
        s = IntervalSet()
        with pytest.raises(ValueError):
            s.remove(5, 0)


class TestQueries:
    def test_coverage(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        assert s.coverage(5, 25) == 10
        assert s.coverage(10, 20) == 0
        assert s.coverage(0, 30) == 20
        assert s.coverage(30, 10) == 0

    def test_gaps(self):
        s = IntervalSet()
        s.add(10, 20)
        s.add(30, 40)
        assert s.gaps(0, 50) == [(0, 10), (20, 30), (40, 50)]
        assert s.gaps(10, 20) == []
        assert s.gaps(12, 18) == []
        assert s.gaps(15, 35) == [(20, 30)]

    def test_contains(self):
        s = IntervalSet()
        s.add(0, 100)
        assert s.contains(10, 90)
        assert s.contains(0, 100)
        assert not s.contains(0, 101)

    def test_first(self):
        s = IntervalSet()
        assert s.first() is None
        s.add(20, 30)
        s.add(5, 10)
        assert s.first() == (5, 10)

    def test_clear(self):
        s = IntervalSet()
        s.add(0, 10)
        s.clear()
        assert not s
        assert s.total == 0


ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 200),
        st.integers(0, 200),
    ),
    max_size=40,
)


class TestModelBased:
    @settings(max_examples=200, deadline=None)
    @given(ops, st.integers(0, 200), st.integers(0, 200))
    def test_matches_naive_set_of_bytes(self, operations, qa, qb):
        s = IntervalSet()
        model: set[int] = set()
        for op, a, b in operations:
            lo, hi = min(a, b), max(a, b)
            if op == "add":
                added = s.add(lo, hi)
                new = set(range(lo, hi)) - model
                assert added == len(new)
                model |= set(range(lo, hi))
            else:
                removed = s.remove(lo, hi)
                gone = set(range(lo, hi)) & model
                assert removed == len(gone)
                model -= set(range(lo, hi))
        assert s.total == len(model)
        lo, hi = min(qa, qb), max(qa, qb)
        assert s.coverage(lo, hi) == len(model & set(range(lo, hi)))
        # gaps partition the uncovered bytes exactly
        gap_bytes = set()
        for gs, ge in s.gaps(lo, hi):
            gap_bytes |= set(range(gs, ge))
        assert gap_bytes == set(range(lo, hi)) - model
        # structural invariants: sorted, disjoint, non-adjacent
        ivs = s.intervals()
        for (s1, e1), (s2, e2) in zip(ivs, ivs[1:]):
            assert s1 < e1
            assert e1 < s2


class TestDeltasAndEpoch:
    """The O(1) accounting contract: `total` is a running counter kept
    exact by the add/remove return deltas, and `mutation_epoch` bumps
    exactly on effective mutations (so observers can check "nothing
    changed" without snapshotting)."""

    def test_total_tracks_deltas(self):
        s = IntervalSet()
        running = 0
        running += s.add(0, 100)
        running += s.add(50, 150)       # half-overlapping
        running += s.add(200, 300)
        running -= s.remove(75, 225)    # spans a gap and two intervals
        running += s.add(120, 130)      # refill part of the hole
        running -= s.remove(0, 1000)    # wipe
        assert running == s.total == 0
        running += s.add(10, 20)
        assert running == s.total == 10

    def test_noop_mutations_return_zero_and_keep_epoch(self):
        s = IntervalSet()
        s.add(0, 10)
        epoch = s.mutation_epoch
        assert s.add(0, 10) == 0        # fully covered
        assert s.add(5, 5) == 0         # empty
        assert s.remove(20, 30) == 0    # outside
        assert s.remove(10, 10) == 0    # empty
        assert s.mutation_epoch == epoch

    def test_effective_mutations_bump_epoch(self):
        s = IntervalSet()
        e0 = s.mutation_epoch
        s.add(0, 10)
        assert s.mutation_epoch == e0 + 1
        s.remove(0, 5)
        assert s.mutation_epoch == e0 + 2
        s.clear()
        assert s.mutation_epoch == e0 + 3
        s.clear()  # already empty: no-op
        assert s.mutation_epoch == e0 + 3

    def test_split_remove_delta(self):
        s = IntervalSet()
        s.add(0, 100)
        assert s.remove(40, 60) == 20
        assert s.total == 80
        assert len(s) == 2

    @settings(max_examples=100, deadline=None)
    @given(ops)
    def test_epoch_changes_iff_membership_changes(self, operations):
        s = IntervalSet()
        for op, a, b in operations:
            lo, hi = min(a, b), max(a, b)
            before_epoch = s.mutation_epoch
            before = s.intervals()
            delta = s.add(lo, hi) if op == "add" else s.remove(lo, hi)
            if delta:
                assert s.mutation_epoch == before_epoch + 1
            else:
                assert s.mutation_epoch == before_epoch
                assert s.intervals() == before


class TestLargeSetRegression:
    """Coverage/gaps on many-interval sets.

    The seed implementation sliced tail copies of the interval lists on
    every query; with tens of thousands of fragments (a striped file's
    dirty map) that turned each query into an O(n) allocation.  These
    pin the index-walking implementation's exactness at that scale and
    that short queries do not degrade with set size.
    """

    N = 20_000  # disjoint fragments: [4i, 4i+2)

    @classmethod
    def _big(cls):
        s = IntervalSet()
        for i in range(cls.N):
            s.add(4 * i, 4 * i + 2)
        return s

    def test_structure_and_total(self):
        s = self._big()
        assert len(s) == self.N
        assert s.total == 2 * self.N

    def test_point_queries_across_the_set(self):
        s = self._big()
        for i in (0, 1, self.N // 2, self.N - 1):
            base = 4 * i
            assert s.coverage(base, base + 4) == 2
            assert s.gaps(base, base + 4) == [(base + 2, base + 4)]
            assert s.contains(base, base + 2)
            assert not s.contains(base, base + 3)

    def test_full_span_aggregates(self):
        s = self._big()
        span = 4 * self.N
        assert s.coverage(0, span) == 2 * self.N
        g = s.gaps(0, span)
        assert len(g) == self.N
        assert g[0] == (2, 4)
        assert g[-1] == (span - 2, span)
        assert sum(e - b for b, e in g) == span - s.total

    def test_short_queries_are_size_independent(self):
        import timeit

        small = IntervalSet()
        for i in range(16):
            small.add(4 * i, 4 * i + 2)
        big = self._big()
        probe_small = 4 * 8
        probe_big = 4 * (self.N - 8)  # deep in the tail of the big set
        t_small = min(
            timeit.repeat(
                lambda: big.coverage(probe_small, probe_small + 8),
                number=2000, repeat=5,
            )
        )
        t_big = min(
            timeit.repeat(
                lambda: big.coverage(probe_big, probe_big + 8),
                number=2000, repeat=5,
            )
        )
        t_ref = min(
            timeit.repeat(
                lambda: small.coverage(probe_small, probe_small + 8),
                number=2000, repeat=5,
            )
        )
        # a tail query of a 20k-interval set must cost about the same
        # as any query of a 16-interval set (generous 10x headroom to
        # stay robust on noisy CI machines; the O(n)-slicing seed was
        # >100x here)
        assert t_big < 10 * t_ref
        assert t_small < 10 * t_ref
