"""Unit + model-based property tests for IntervalSet."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pfs import IntervalSet


class TestAdd:
    def test_single(self):
        s = IntervalSet()
        assert s.add(0, 10) == 10
        assert s.intervals() == [(0, 10)]
        assert s.total == 10

    def test_disjoint(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        assert s.intervals() == [(0, 10), (20, 30)]

    def test_overlap_merges(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.add(5, 15) == 5
        assert s.intervals() == [(0, 15)]

    def test_adjacent_coalesces(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert s.intervals() == [(0, 20)]
        assert len(s) == 1

    def test_spanning_add_merges_many(self):
        s = IntervalSet()
        for i in range(5):
            s.add(i * 10, i * 10 + 5)
        s.add(0, 100)
        assert s.intervals() == [(0, 100)]

    def test_duplicate_add_adds_nothing(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.add(2, 8) == 0

    def test_empty_add(self):
        s = IntervalSet()
        assert s.add(5, 5) == 0
        assert not s

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add(10, 0)


class TestRemove:
    def test_exact(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.remove(0, 10) == 10
        assert not s

    def test_middle_splits(self):
        s = IntervalSet()
        s.add(0, 30)
        assert s.remove(10, 20) == 10
        assert s.intervals() == [(0, 10), (20, 30)]

    def test_left_trim(self):
        s = IntervalSet()
        s.add(10, 30)
        assert s.remove(0, 20) == 10
        assert s.intervals() == [(20, 30)]

    def test_remove_nothing(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.remove(20, 30) == 0
        assert s.remove(10, 10) == 0

    def test_remove_across_intervals(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        s.add(40, 50)
        assert s.remove(5, 45) == 20
        assert s.intervals() == [(0, 5), (45, 50)]

    def test_adjacent_boundary_untouched(self):
        s = IntervalSet()
        s.add(0, 10)
        assert s.remove(10, 20) == 0
        assert s.intervals() == [(0, 10)]

    def test_inverted_rejected(self):
        s = IntervalSet()
        with pytest.raises(ValueError):
            s.remove(5, 0)


class TestQueries:
    def test_coverage(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        assert s.coverage(5, 25) == 10
        assert s.coverage(10, 20) == 0
        assert s.coverage(0, 30) == 20
        assert s.coverage(30, 10) == 0

    def test_gaps(self):
        s = IntervalSet()
        s.add(10, 20)
        s.add(30, 40)
        assert s.gaps(0, 50) == [(0, 10), (20, 30), (40, 50)]
        assert s.gaps(10, 20) == []
        assert s.gaps(12, 18) == []
        assert s.gaps(15, 35) == [(20, 30)]

    def test_contains(self):
        s = IntervalSet()
        s.add(0, 100)
        assert s.contains(10, 90)
        assert s.contains(0, 100)
        assert not s.contains(0, 101)

    def test_first(self):
        s = IntervalSet()
        assert s.first() is None
        s.add(20, 30)
        s.add(5, 10)
        assert s.first() == (5, 10)

    def test_clear(self):
        s = IntervalSet()
        s.add(0, 10)
        s.clear()
        assert not s
        assert s.total == 0


ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 200),
        st.integers(0, 200),
    ),
    max_size=40,
)


class TestModelBased:
    @settings(max_examples=200, deadline=None)
    @given(ops, st.integers(0, 200), st.integers(0, 200))
    def test_matches_naive_set_of_bytes(self, operations, qa, qb):
        s = IntervalSet()
        model: set[int] = set()
        for op, a, b in operations:
            lo, hi = min(a, b), max(a, b)
            if op == "add":
                added = s.add(lo, hi)
                new = set(range(lo, hi)) - model
                assert added == len(new)
                model |= set(range(lo, hi))
            else:
                removed = s.remove(lo, hi)
                gone = set(range(lo, hi)) & model
                assert removed == len(gone)
                model -= set(range(lo, hi))
        assert s.total == len(model)
        lo, hi = min(qa, qb), max(qa, qb)
        assert s.coverage(lo, hi) == len(model & set(range(lo, hi)))
        # gaps partition the uncovered bytes exactly
        gap_bytes = set()
        for gs, ge in s.gaps(lo, hi):
            gap_bytes |= set(range(gs, ge))
        assert gap_bytes == set(range(lo, hi)) - model
        # structural invariants: sorted, disjoint, non-adjacent
        ivs = s.intervals()
        for (s1, e1), (s2, e2) in zip(ivs, ivs[1:]):
            assert s1 < e1
            assert e1 < s2
