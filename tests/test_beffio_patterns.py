"""Tests for the Table 2 pattern list."""

import pytest

from repro.beffio import SUM_U, build_patterns, mpart_for
from repro.beffio.patterns import IOPattern, active_pattern_count, patterns_of_type
from repro.util import GB, KB, MB

MEM = 256 * MB  # M_PART = 2 MB


class TestMpart:
    def test_floor_at_2mb(self):
        assert mpart_for(16 * MB) == 2 * MB

    def test_scales_with_memory(self):
        assert mpart_for(1 * GB) == 8 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            mpart_for(0)


class TestTable2:
    def test_sum_u_is_64(self):
        pats = build_patterns(MEM)
        assert sum(p.U for p in pats) == SUM_U == 64

    def test_active_pattern_count_is_36(self):
        assert active_pattern_count(build_patterns(MEM)) == 36

    def test_numbering_dense(self):
        pats = build_patterns(MEM)
        assert [p.number for p in pats] == list(range(43))

    def test_per_type_u_sums(self):
        pats = build_patterns(MEM)
        sums = {t: sum(p.U for p in patterns_of_type(pats, t)) for t in range(5)}
        assert sums == {0: 22, 1: 12, 2: 10, 3: 10, 4: 10}

    def test_type0_scatter_sizes(self):
        t0 = patterns_of_type(build_patterns(MEM), 0)
        # pattern 5: 1 kB disk chunks, 1 MB memory chunks
        p5 = t0[5]
        assert p5.l == KB and p5.L == MB
        assert p5.chunks_per_call == 1024

    def test_nonwellformed_sizes(self):
        pats = build_patterns(MEM)
        p6, p7, p8 = pats[6], pats[7], pats[8]
        assert (p6.l, p6.L) == (32 * KB + 8, MB + 256)
        assert (p7.l, p7.L) == (KB + 8, MB + 8 * KB)
        assert (p8.l, p8.L) == (MB + 8, MB + 8)
        assert not p6.wellformed and not p7.wellformed and not p8.wellformed
        # non-wellformed chunk counts match their wellformed sibling
        assert p6.L // p6.l == 32
        assert p7.L // p7.l == 1024
        assert p8.chunks_per_call == 1

    def test_mpart_pattern_resolved(self):
        pats = build_patterns(1 * GB)
        assert pats[1].l == 8 * MB  # type 0 row 1 uses M_PART
        assert pats[10].l == 8 * MB  # type 1 row 1

    def test_per_chunk_types_have_L_eq_l(self):
        pats = build_patterns(MEM)
        for p in pats:
            if p.pattern_type != 0:
                assert p.L == p.l

    def test_fill_segment_rows(self):
        pats = build_patterns(MEM)
        fills = [p for p in pats if p.fill_segment]
        assert [p.number for p in fills] == [33, 42]
        assert all(p.U == 0 for p in fills)
        assert {p.pattern_type for p in fills} == {3, 4}

    def test_types_3_and_4_mirror_type_2(self):
        pats = build_patterns(MEM)
        t2 = [(p.l, p.L, p.U) for p in patterns_of_type(pats, 2)]
        t3 = [(p.l, p.L, p.U) for p in patterns_of_type(pats, 3) if not p.fill_segment]
        t4 = [(p.l, p.L, p.U) for p in patterns_of_type(pats, 4) if not p.fill_segment]
        assert t2 == t3 == t4

    def test_labels(self):
        pats = build_patterns(MEM)
        assert pats[5].label == "1 kB"
        assert pats[6].label == "32 kB+8"
        assert pats[0].label == "1 MB"

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            IOPattern(0, 9, KB, KB, 1, True)
        with pytest.raises(ValueError):
            IOPattern(0, 0, 2 * KB, KB, 1, True)  # L < l
        with pytest.raises(ValueError):
            IOPattern(0, 0, KB, KB, -1, True)
