"""Tests for communicator management (dup/create/split/view) and cart."""

import pytest

from repro.mpi import CartComm, Comm, MpiError, World, dims_create
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import MB


def make_world(nprocs=8):
    sim = Simulator()
    fabric = Fabric(sim, Torus((nprocs,), link_bw=100 * MB), NetParams())
    return World(fabric)


class TestCommConstruction:
    def test_comm_world_covers_all_ranks(self):
        world = make_world(8)
        assert world.comm_world.size == 8
        assert world.comm_world.ranks == list(range(8))

    def test_empty_comm_rejected(self):
        world = make_world()
        with pytest.raises(MpiError):
            Comm(world, [])

    def test_duplicate_ranks_rejected(self):
        world = make_world()
        with pytest.raises(MpiError):
            Comm(world, [0, 1, 1])

    def test_dup_gets_fresh_context(self):
        world = make_world()
        dup = world.comm_world.dup()
        assert dup.context != world.comm_world.context
        assert dup.ranks == world.comm_world.ranks

    def test_create_subset_with_reordering(self):
        world = make_world(8)
        sub = world.comm_world.create([3, 1, 5])
        assert sub.size == 3
        assert sub.world_rank(0) == 3
        assert sub.rank_of_world(5) == 2
        assert sub.rank_of_world(0) is None

    def test_contexts_isolate_traffic(self):
        # Same (src, dst, tag) on two communicators must not cross-match.
        world = make_world(2)
        a = world.comm_world
        b = world.comm_world.dup()
        got = []

        def program(comm):
            if comm.rank == 0:
                yield from a.send(0, 1, 8, tag=0, data="on-a")
                yield from b.send(0, 1, 8, tag=0, data="on-b")
            else:
                sb = yield from b.recv(1, 0, tag=0)
                sa = yield from a.recv(1, 0, tag=0)
                got.extend([sb.data, sa.data])

        world.run(program)
        assert got == ["on-b", "on-a"]


class TestSplit:
    def test_split_by_parity(self):
        world = make_world(8)
        assignments = [(r % 2, r) for r in range(8)]
        parts = world.comm_world.split(assignments)
        assert sorted(parts) == [0, 1]
        assert parts[0].ranks == [0, 2, 4, 6]
        assert parts[1].ranks == [1, 3, 5, 7]

    def test_split_key_orders_ranks(self):
        world = make_world(4)
        assignments = [(0, -r) for r in range(4)]  # reverse order
        parts = world.comm_world.split(assignments)
        assert parts[0].ranks == [3, 2, 1, 0]

    def test_split_undefined_color_excluded(self):
        world = make_world(4)
        assignments = [(0, 0), (-1, 0), (0, 1), (-1, 0)]
        parts = world.comm_world.split(assignments)
        assert parts[0].ranks == [0, 2]

    def test_split_wrong_arity(self):
        world = make_world(4)
        with pytest.raises(MpiError):
            world.comm_world.split([(0, 0)])


class TestRankView:
    def test_view_binds_rank(self):
        world = make_world(4)
        v = world.comm_world.view(2)
        assert v.rank == 2
        assert v.size == 4

    def test_view_rejects_bad_rank(self):
        world = make_world(4)
        with pytest.raises(MpiError):
            world.comm_world.view(4)

    def test_of_rebinds_subcommunicator(self):
        world = make_world(8)
        sub = world.comm_world.create([1, 3, 5])
        v = world.comm_world.view(3)
        sv = v.of(sub)
        assert sv.rank == 1
        assert sv.size == 3
        assert world.comm_world.view(0).of(sub) is None

    def test_communication_within_subcomm(self):
        world = make_world(4)
        sub = world.comm_world.create([2, 3])
        got = []

        def program(comm):
            s = comm.of(sub)
            if s is None:
                return
                yield  # pragma: no cover
            if s.rank == 0:
                yield from s.send(1, nbytes=8, data="sub")
            else:
                status = yield from s.recv(0)
                got.append((status.data, status.source))

        world.run(program)
        assert got == [("sub", 0)]


class TestDimsCreate:
    @pytest.mark.parametrize(
        "n,ndims,expected",
        [
            (12, 2, (4, 3)),
            (8, 3, (2, 2, 2)),
            (24, 3, (4, 3, 2)),
            (7, 2, (7, 1)),
        ],
    )
    def test_balanced(self, n, ndims, expected):
        assert dims_create(n, ndims) == expected

    def test_fixed_dimension_respected(self):
        assert dims_create(12, 2, [3, 0]) == (3, 4)

    def test_impossible_constraint_rejected(self):
        with pytest.raises(MpiError):
            dims_create(12, 2, [5, 0])

    def test_fully_fixed_must_match(self):
        assert dims_create(6, 2, [2, 3]) == (2, 3)
        with pytest.raises(MpiError):
            dims_create(7, 2, [2, 3])

    def test_validation(self):
        with pytest.raises(MpiError):
            dims_create(0, 2)
        with pytest.raises(MpiError):
            dims_create(4, 0)
        with pytest.raises(MpiError):
            dims_create(4, 2, [-1, 0])


class TestCartComm:
    def test_coords_roundtrip(self):
        world = make_world(12)
        cart = CartComm(world.comm_world, (3, 4))
        for r in range(12):
            assert cart.rank_at(cart.coords(r)) == r

    def test_dims_must_cover_size(self):
        world = make_world(8)
        with pytest.raises(MpiError):
            CartComm(world.comm_world, (3, 3))

    def test_periodic_shift_wraps(self):
        world = make_world(8)
        cart = CartComm(world.comm_world, (2, 4), periodic=True)
        src, dst = cart.shift(0, dim=1, disp=1)
        assert dst == 1
        assert src == 3  # wraps around row 0

    def test_nonperiodic_shift_has_nulls(self):
        world = make_world(8)
        cart = CartComm(world.comm_world, (2, 4), periodic=False)
        src, dst = cart.shift(0, dim=0, disp=1)
        assert src is None  # no row above
        assert dst == 4

    def test_mixed_periodicity(self):
        world = make_world(8)
        cart = CartComm(world.comm_world, (2, 4), periodic=(False, True))
        src, dst = cart.shift(3, dim=1, disp=1)
        assert dst == 0
        src, dst = cart.shift(3, dim=0, disp=1)
        assert dst == 7
        assert src is None

    def test_halo_exchange_runs(self):
        # 2-D Cartesian sendrecv in both directions (the b_eff detail
        # pattern) completes without deadlock.
        world = make_world(12)
        cart = CartComm(world.comm_world, (3, 4), periodic=True)
        done = []

        def program(comm):
            for dim in range(2):
                src, dst = cart.shift(comm.rank, dim)
                yield from comm.sendrecv(dst, send_nbytes=1024, src=src)
            done.append(comm.rank)

        world.run(program)
        assert sorted(done) == list(range(12))
