"""Tests for max-min fair fluid flow network."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import FlowNetwork, Process, SimEvent, Simulator
from repro.util import MB


def run_flows(flows, capacities):
    """Helper: start flows (route, nbytes, start_time) and return finish times."""
    sim = Simulator()
    net = FlowNetwork(sim)
    links = [net.add_link(c) for c in capacities]
    finishes = {}

    def starter(idx, route, nbytes, start):
        if start:
            from repro.sim import Sleep

            yield Sleep(start)
        ev = net.start_flow([links[i] for i in route], nbytes)
        yield ev
        finishes[idx] = sim.now

    for idx, (route, nbytes, start) in enumerate(flows):
        Process(sim, starter(idx, route, nbytes, start))
    sim.run_to_completion()
    return finishes


class TestSingleFlow:
    def test_full_capacity(self):
        finishes = run_flows([(([0]), 100.0, 0.0)], [10.0])
        assert finishes[0] == pytest.approx(10.0)

    def test_bottleneck_is_slowest_link(self):
        finishes = run_flows([(([0, 1]), 100.0, 0.0)], [10.0, 5.0])
        assert finishes[0] == pytest.approx(20.0)

    def test_zero_bytes_completes_immediately(self):
        finishes = run_flows([(([0]), 0.0, 0.0)], [10.0])
        assert finishes[0] == pytest.approx(0.0)

    def test_empty_route_completes_immediately(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        done = []

        def prog():
            yield net.start_flow([], 1000.0)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [0.0]

    def test_rate_cap_limits_single_flow(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_link(100.0)
        done = []

        def prog():
            yield net.start_flow([link], 100.0, rate_cap=10.0)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [pytest.approx(10.0)]

    def test_unknown_link_rejected(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        with pytest.raises(KeyError):
            net.start_flow([99], 10.0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        net.add_link(1.0)
        with pytest.raises(ValueError):
            net.start_flow([0], -1.0)

    def test_bad_capacity_rejected(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        with pytest.raises(ValueError):
            net.add_link(0.0)
        with pytest.raises(ValueError):
            net.add_link(float("inf"))


class TestSharing:
    def test_two_equal_flows_share_link(self):
        # Two 100-byte flows over one 10 B/s link: each gets 5 B/s.
        finishes = run_flows([([0], 100.0, 0.0), ([0], 100.0, 0.0)], [10.0])
        assert finishes[0] == pytest.approx(20.0)
        assert finishes[1] == pytest.approx(20.0)

    def test_late_flow_halves_the_rate(self):
        # Flow A alone for 5 s at 10 B/s (50 bytes done), then B (50 bytes)
        # arrives; both run at 5 B/s for 10 s and finish together at t=15.
        finishes = run_flows([([0], 100.0, 0.0), ([0], 50.0, 5.0)], [10.0])
        assert finishes[1] == pytest.approx(15.0)
        assert finishes[0] == pytest.approx(15.0)

    def test_disjoint_flows_do_not_interact(self):
        finishes = run_flows([([0], 100.0, 0.0), ([1], 100.0, 0.0)], [10.0, 10.0])
        assert finishes[0] == pytest.approx(10.0)
        assert finishes[1] == pytest.approx(10.0)

    def test_max_min_unequal_paths(self):
        # Flow A uses links 0+1, flow B uses link 1 only, flow C uses link 0 only.
        # caps: link0=10, link1=4. Progressive filling:
        # bottleneck link1 share 2 -> A,B fixed at 2. link0 residual 8 -> C gets 8.
        sim = Simulator()
        net = FlowNetwork(sim)
        l0, l1 = net.add_link(10.0), net.add_link(4.0)
        done = {}

        def prog(tag, route, nbytes):
            yield net.start_flow(route, nbytes)
            done[tag] = sim.now

        Process(sim, prog("A", [l0, l1], 20.0))
        Process(sim, prog("B", [l1], 20.0))
        Process(sim, prog("C", [l0], 80.0))
        sim.run_to_completion()
        assert done["A"] == pytest.approx(10.0)
        assert done["B"] == pytest.approx(10.0)
        assert done["C"] == pytest.approx(10.0)

    def test_released_bandwidth_redistributed(self):
        # Two flows share a 10 B/s link. B is short (25 bytes).
        # Phase 1: both at 5 B/s until B done at t=5. A then runs at 10 B/s.
        # A: 100 bytes = 25 at 5 B/s (5 s) + 75 at 10 B/s (7.5 s) -> 12.5 s.
        finishes = run_flows([([0], 100.0, 0.0), ([0], 25.0, 0.0)], [10.0])
        assert finishes[1] == pytest.approx(5.0)
        assert finishes[0] == pytest.approx(12.5)

    def test_many_symmetric_flows(self):
        n = 32
        finishes = run_flows([([0], 10.0, 0.0) for _ in range(n)], [10.0])
        for i in range(n):
            assert finishes[i] == pytest.approx(n * 1.0)


class TestCounters:
    def test_bytes_completed_counts_total_bytes(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_link(10.0)

        def prog():
            yield net.start_flow([link], 30.0)
            yield net.start_flow([link], 12.0)

        Process(sim, prog())
        sim.run_to_completion()
        assert net.bytes_completed == pytest.approx(42.0)
        assert net.flows_completed == 2
        assert net.active_flows == 0

    def test_private_cap_links_are_cleaned_up(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_link(10.0)
        before = net.num_links

        def prog():
            yield net.start_flow([link], 10.0, rate_cap=5.0)

        Process(sim, prog())
        sim.run_to_completion()
        assert net.num_links == before


class TestConservationProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # route choice
                st.floats(min_value=1.0, max_value=1000.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_all_flows_complete_and_order_is_sane(self, specs):
        routes = {0: [0], 1: [1], 2: [0, 1]}
        flows = [(routes[r], nbytes, start) for r, nbytes, start in specs]
        finishes = run_flows(flows, [7.0, 11.0])
        assert len(finishes) == len(flows)
        for idx, (route, nbytes, start) in enumerate(flows):
            # lower bound: cannot beat full bottleneck capacity
            cap = min(7.0 if 0 in route else 1e18, 11.0 if 1 in route else 1e18)
            assert finishes[idx] >= start + nbytes / cap - 1e-6
