"""Tests for the DES event engine."""

import pytest

from repro.sim import DeadlockError, Process, Simulator, Sleep


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_during_callback(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.5, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(handle)  # must not raise
        sim.run()

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(h)
        assert sim.peek() == 2.0

    def test_cancel_after_fire_leaves_no_state(self):
        # regression: the seed kept every post-fire cancelled seq in a
        # set forever, so long-running simulations leaked memory
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(100)]
        sim.run()
        for h in handles:
            sim.cancel(h)
        assert sim._live == {}
        assert sim._heap == []

    def test_cancelled_pending_event_is_dropped_when_reached(self):
        sim = Simulator()
        for _ in range(50):
            sim.cancel(sim.schedule(1.0, lambda: None))
        sim.run()
        assert sim._live == {}
        assert sim._heap == []

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(h)
        sim.cancel(h)
        sim.run()
        assert fired == []
        assert sim._live == {}


class TestRunBounds:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 2]

    def test_run_until_advances_clock_past_last_event(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for _ in range(5):
            sim.schedule(1.0, lambda: fired.append(1))
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_step_empty_returns_false(self):
        assert Simulator().step() is False


class TestDeadlockDetection:
    def test_blocked_process_raises(self):
        from repro.sim import SimEvent

        sim = Simulator()
        ev = SimEvent(sim)

        def prog():
            yield ev  # never triggered

        Process(sim, prog(), name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            sim.run_to_completion()

    def test_finished_processes_ok(self):
        sim = Simulator()

        def prog():
            yield Sleep(1.0)

        Process(sim, prog())
        sim.run_to_completion()
        assert sim.now == 1.0


class TestTailLane:
    def test_tail_runs_after_all_ordinary_events_of_the_instant(self):
        sim = Simulator()
        ran = []
        sim.schedule_tail(lambda: ran.append("tail"))
        # ordinary events scheduled *after* the tail still run first ...
        sim.schedule(0.0, lambda: ran.append("a"))
        # ... including zero-delay events added while the instant executes
        sim.schedule(0.0, lambda: sim.schedule(0.0, lambda: ran.append("b")))
        sim.run()
        assert ran == ["a", "b", "tail"]

    def test_tail_does_not_leak_into_later_instants(self):
        sim = Simulator()
        ran = []

        def first():
            sim.schedule_tail(lambda: ran.append("tail@0"))
            sim.schedule(1.0, lambda: ran.append("later"))

        sim.schedule(0.0, first)
        sim.run()
        assert ran == ["tail@0", "later"]

    def test_tail_is_cancellable(self):
        sim = Simulator()
        ran = []
        handle = sim.schedule_tail(lambda: ran.append("tail"))
        sim.schedule(0.0, lambda: ran.append("a"))
        sim.cancel(handle)
        sim.run()
        assert ran == ["a"]

    def test_tail_events_keep_schedule_order_among_themselves(self):
        sim = Simulator()
        ran = []
        sim.schedule_tail(lambda: ran.append(1))
        sim.schedule_tail(lambda: ran.append(2))
        sim.run()
        assert ran == [1, 2]

    def test_tail_runs_after_shuffled_ordinary_events(self):
        from repro.sim import Tail

        def order(seed):
            sim = Simulator()
            if seed is not None:
                sim.instrument(tie_shuffle_seed=seed)
            ran = []

            def parker():
                yield Tail()
                ran.append("tail")

            Process(sim, parker())
            for i in range(5):
                sim.schedule(0.0, lambda i=i: ran.append(i))
            sim.run()
            return ran

        for seed in (None, 1, 2, 3):
            ran = order(seed)
            assert ran[-1] == "tail"
            assert sorted(ran[:-1]) == [0, 1, 2, 3, 4]
