"""Tests for file views."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpiio import ContiguousView, StridedView


class TestContiguousView:
    def test_identity(self):
        v = ContiguousView()
        assert v.map_bytes(0, 100) == [(0, 100)]

    def test_displacement(self):
        v = ContiguousView(disp=50)
        assert v.map_bytes(10, 20) == [(60, 80)]

    def test_zero_bytes(self):
        assert ContiguousView().map_bytes(5, 0) == []

    def test_extent(self):
        assert ContiguousView(10).extent_of(100) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ContiguousView(-1)
        with pytest.raises(ValueError):
            ContiguousView().map_bytes(-1, 10)
        with pytest.raises(ValueError):
            ContiguousView().map_bytes(0, -1)


class TestStridedView:
    def test_pattern_type0_interleave(self):
        # process 1 of 4, chunks of 10: disp=10, block=10, stride=40
        v = StridedView(disp=10, block=10, stride=40)
        assert v.map_bytes(0, 30) == [(10, 20), (50, 60), (90, 100)]

    def test_partial_blocks(self):
        v = StridedView(disp=0, block=10, stride=100)
        assert v.map_bytes(5, 10) == [(5, 10), (100, 105)]

    def test_mid_block_start(self):
        v = StridedView(disp=0, block=10, stride=30)
        assert v.map_bytes(13, 5) == [(33, 38)]

    def test_stride_equals_block_coalesces(self):
        v = StridedView(disp=0, block=10, stride=10)
        assert v.map_bytes(0, 35) == [(0, 35)]

    def test_extent_of(self):
        v = StridedView(disp=0, block=10, stride=40)
        assert v.extent_of(0) == 0
        assert v.extent_of(10) == 10
        assert v.extent_of(15) == 45
        assert v.extent_of(20) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedView(-1, 10, 40)
        with pytest.raises(ValueError):
            StridedView(0, 0, 40)
        with pytest.raises(ValueError):
            StridedView(0, 10, 5)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(0, 50),     # disp
        st.integers(1, 20),     # block
        st.integers(0, 30),     # stride slack
        st.integers(0, 100),    # position
        st.integers(0, 200),    # nbytes
    )
    def test_mapping_properties(self, disp, block, slack, position, nbytes):
        v = StridedView(disp, block, block + slack)
        extents = v.map_bytes(position, nbytes)
        # total size preserved
        assert sum(e - s for s, e in extents) == nbytes
        # extents ordered, disjoint, and non-adjacent-or-coalesced
        for (s1, e1), (s2, e2) in zip(extents, extents[1:]):
            assert e1 < s2 or (e1 <= s2)
            assert e1 != s2  # adjacency must have been coalesced
        # all extents land inside view blocks
        for s, e in extents:
            assert s >= disp

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 20), st.integers(0, 30), st.integers(1, 100))
    def test_disjoint_ranks_interleave_without_overlap(self, block, extra, n):
        # Two ranks with pattern-type-0 views never overlap.
        stride = 2 * block
        v0 = StridedView(0, block, stride)
        v1 = StridedView(block, block, stride)
        e0 = v0.map_bytes(0, n)
        e1 = v1.map_bytes(0, n)
        bytes0 = {b for s, e in e0 for b in range(s, e)}
        bytes1 = {b for s, e in e1 for b in range(s, e)}
        assert not (bytes0 & bytes1)
