"""Tests for the timing-jitter model and the max-over-repetitions rationale."""

import pytest

from repro.beff import MeasurementConfig, run_beff
from repro.net import Fabric, NetParams
from repro.sim import Process, Simulator
from repro.topology import Torus
from repro.util import MB


def make_fabric(jitter=0.0, seed=1):
    sim = Simulator()
    return Fabric(
        sim, Torus((2,), link_bw=100 * MB),
        NetParams(latency=100e-6, jitter=jitter),
        jitter_seed=seed,
    )


def one_transfer_time(fabric, nbytes=1024):
    done = []

    def prog():
        yield fabric.transfer_event(0, 1, nbytes)
        done.append(fabric.sim.now)

    Process(fabric.sim, prog())
    fabric.sim.run_to_completion()
    return done[0]


class TestJitterModel:
    def test_zero_jitter_is_exact(self):
        t1 = one_transfer_time(make_fabric(0.0))
        t2 = one_transfer_time(make_fabric(0.0))
        assert t1 == t2

    def test_jitter_perturbs_latency(self):
        base = one_transfer_time(make_fabric(0.0))
        jittered = one_transfer_time(make_fabric(0.3))
        assert jittered != base
        # bounded by the jitter fraction of the latency
        assert abs(jittered - base) <= 0.3 * 100e-6 * 1.001

    def test_jitter_deterministic_per_seed(self):
        a = one_transfer_time(make_fabric(0.3, seed=7))
        b = one_transfer_time(make_fabric(0.3, seed=7))
        c = one_transfer_time(make_fabric(0.3, seed=8))
        assert a == b
        assert a != c

    def test_validation(self):
        with pytest.raises(ValueError):
            NetParams(jitter=-0.1)
        with pytest.raises(ValueError):
            NetParams(jitter=1.0)


class TestMaxOverRepetitionsRationale:
    def test_jitter_makes_repetitions_differ(self):
        def factory():
            sim = Simulator()
            return Fabric(
                sim, Torus((2,), link_bw=300 * MB),
                NetParams(latency=20e-6, jitter=0.2),
            )

        config = MeasurementConfig(methods=("nonblocking",), repetitions=3)
        result = run_beff(factory, 512 * MB, config)
        by_key = {}
        for r in result.records:
            by_key.setdefault((r.pattern, r.size), []).append(r.bandwidth)
        spread = [
            (max(v) - min(v)) / max(v) for v in by_key.values() if len(v) == 3
        ]
        # small messages are latency-dominated: jitter must show up
        assert max(spread) > 0.01

    def test_max_over_reps_filters_noise_upward(self):
        # with jitter, the 3-rep max (the paper's rule) is >= any
        # single repetition's value — the point of taking the maximum
        def factory():
            sim = Simulator()
            return Fabric(
                sim, Torus((2,), link_bw=300 * MB),
                NetParams(latency=20e-6, jitter=0.2),
            )

        config3 = MeasurementConfig(methods=("nonblocking",), repetitions=3)
        result3 = run_beff(factory, 512 * MB, config3)
        config1 = MeasurementConfig(methods=("nonblocking",), repetitions=1)
        result1 = run_beff(factory, 512 * MB, config1)
        assert result3.b_eff >= result1.b_eff * 0.999
