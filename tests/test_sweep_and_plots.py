"""Tests for the partition sweep API and ASCII chart renderers."""

import pytest

from repro.beffio import BeffIOConfig
from repro.beffio.sweep import OFFICIAL_MINIMUM_T, SweepResult, run_sweep
from repro.machines import cray_t3e_900
from repro.reporting.plots import log_bar_chart, multi_series_chart


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        spec = cray_t3e_900()
        cfg = BeffIOConfig(T=0.8, pattern_types=(0, 2))
        return run_sweep(spec, [4, 2], cfg)

    def test_partitions_sorted_and_deduped(self, sweep):
        assert [r.nprocs for r in sweep.results] == [2, 4]

    def test_system_value_is_max(self, sweep):
        values = sweep.partition_values()
        assert sweep.system_b_eff_io == max(values.values())
        assert sweep.best_partition in values

    def test_official_flag(self, sweep):
        assert not sweep.official  # T=0.8 << 15 min
        assert OFFICIAL_MINIMUM_T == 900.0

    def test_machine_name(self, sweep):
        assert sweep.machine == "Cray T3E/900"

    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(cray_t3e_900(), [])


class TestLogBarChart:
    def test_ratios_map_to_length(self):
        out = log_bar_chart([("a", 1.0), ("b", 10.0), ("c", 100.0)], width=21)
        lines = out.splitlines()
        bars = [line.split("|")[1].count("#") for line in lines]
        # equal ratios -> equal increments
        assert bars[1] - bars[0] == bars[2] - bars[1]

    def test_zero_value_renders_dash(self):
        out = log_bar_chart([("a", 10.0), ("none", 0.0)])
        assert "-" in out.splitlines()[1]

    def test_title(self):
        out = log_bar_chart([("a", 1.0)], title="Paper Fig. X")
        assert out.splitlines()[0] == "Paper Fig. X"

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            log_bar_chart([("a", 0.0)])

    def test_single_value(self):
        out = log_bar_chart([("only", 42.0)])
        assert "42.00" in out


class TestMultiSeriesChart:
    def test_blocks_per_series(self):
        out = multi_series_chart(
            ["1 kB", "32 kB", "1 MB"],
            {"type 0": [50.0, 52.0, 55.0], "type 2": [2.0, 20.0, 80.0]},
        )
        assert "-- type 0 --" in out
        assert "-- type 2 --" in out
        assert "1 kB" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_series_chart(["a"], {"s": [1.0, 2.0]})
