"""Tests for the event tracer and the bandwidth-over-size curve."""

import pytest

from repro.beff import MeasurementConfig, run_beff
from repro.mpi import World
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.reporting.tables import bandwidth_curve
from repro.sim import Process, Simulator
from repro.sim.trace import TraceEvent, Tracer
from repro.topology import Torus
from repro.util import KB, MB


class TestTracer:
    def test_records_events(self):
        t = Tracer()
        t.record(1.0, "msg", 0, 1, 100)
        t.record(2.0, "io-write", 0, None, 200)
        assert t.count() == 2
        assert t.count("msg") == 1
        assert t.bytes_moved() == 300
        assert t.bytes_moved("io-write") == 200

    def test_limit_drops_but_counts(self):
        t = Tracer(limit=2)
        for i in range(5):
            t.record(float(i), "msg", 0, 1, 1)
        assert len(t.events) == 2
        assert t.dropped == 3
        assert t.count() == 5

    def test_message_matrix(self):
        t = Tracer()
        t.record(0.0, "msg", 0, 1, 1)
        t.record(0.0, "msg", 0, 1, 1)
        t.record(0.0, "msg", 1, 0, 1)
        t.record(0.0, "io-read", 7, None, 1)
        assert t.message_matrix() == {(0, 1): 2, (1, 0): 1}

    def test_summary_and_clear(self):
        t = Tracer()
        t.record(0.0, "msg", 0, 1, 64)
        out = t.summary()
        assert "1 events recorded" in out
        assert "msg" in out
        t.clear()
        assert t.count() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)


class TestFabricTracing:
    def test_transfers_are_traced(self):
        sim = Simulator()
        tracer = Tracer()
        fabric = Fabric(
            sim, Torus((2,), link_bw=100 * MB), NetParams(), tracer=tracer
        )

        def prog():
            yield fabric.transfer_event(0, 1, 4096)
            yield fabric.transfer_event(1, 0, 128)

        Process(sim, prog())
        sim.run_to_completion()
        assert tracer.count("msg") == 2
        assert tracer.bytes_moved("msg") == 4096 + 128
        assert tracer.message_matrix() == {(0, 1): 1, (1, 0): 1}

    def test_mpi_barrier_message_count(self):
        # dissemination barrier on 8 ranks: 8 * ceil(log2 8) messages
        sim = Simulator()
        tracer = Tracer()
        fabric = Fabric(
            sim, Torus((8,), link_bw=100 * MB), NetParams(), tracer=tracer
        )
        world = World(fabric)

        def program(comm):
            yield from comm.barrier()

        world.run(program)
        assert tracer.count("msg") == 8 * 3


class TestFilesystemTracing:
    def test_io_calls_traced(self):
        sim = Simulator()
        tracer = Tracer()
        fs = FileSystem(sim, PFSConfig(
            num_servers=2, stripe_unit=64 * KB, disk_bw=50 * MB,
            ingest_bw=500 * MB, seek_time=0.0, request_overhead=0.0,
            disk_block=4 * KB, cache_bytes=16 * MB, client_bw=100 * MB,
            server_net_bw=100 * MB, call_overhead=0.0,
        ), tracer=tracer)
        f = fs.open("t")

        def prog():
            yield from fs.write(0, f, 0, MB)
            yield from fs.read(0, f, 0, MB)

        Process(sim, prog())
        sim.run_to_completion()
        assert tracer.count("io-write") == 1
        assert tracer.count("io-read") == 1
        assert tracer.bytes_moved("io-write") == MB


class TestBandwidthCurve:
    @pytest.fixture(scope="class")
    def result(self):
        def factory():
            sim = Simulator()
            return Fabric(
                sim, Torus((4,), link_bw=300 * MB),
                NetParams(latency=10e-6, msg_rate_cap=300 * MB),
            )

        return run_beff(
            factory, 512 * MB,
            MeasurementConfig(methods=("nonblocking",), backend="analytic"),
        )

    def test_curve_renders_all_sizes(self, result):
        out = bandwidth_curve(result, "ring-1")
        assert "1 B" in out
        assert "4 MB" in out  # Lmax of 512 MB/proc
        assert out.count("\n") == 21  # title + 21 rows

    def test_curve_is_monotone_ish(self, result):
        # bandwidth grows with message size (latency amortization)
        from repro.beff.analysis import best_bandwidths

        best = best_bandwidths(result.records)
        values = [best[("ring-1", s)] for s in result.sizes]
        assert values[-1] > values[0] * 50

    def test_unknown_pattern_rejected(self, result):
        with pytest.raises(KeyError):
            bandwidth_curve(result, "ring-99")
