"""Tests for deterministic named random streams."""

from repro.sim.randomness import RandomStreams


class TestRandomStreams:
    def test_same_name_same_sequence(self):
        a = RandomStreams(1).stream("x").random(5).tolist()
        b = RandomStreams(1).stream("x").random(5).tolist()
        assert a == b

    def test_different_names_differ(self):
        a = RandomStreams(1).stream("x").random(5).tolist()
        b = RandomStreams(1).stream("y").random(5).tolist()
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5).tolist()
        b = RandomStreams(2).stream("x").random(5).tolist()
        assert a != b

    def test_permutation_is_permutation(self):
        perm = RandomStreams(7).permutation("random-pattern-0", 64)
        assert sorted(perm) == list(range(64))

    def test_permutation_reproducible(self):
        p1 = RandomStreams(7).permutation("p", 16)
        p2 = RandomStreams(7).permutation("p", 16)
        assert p1 == p2

    def test_stream_isolation(self):
        # Drawing from one stream must not perturb another.
        rs = RandomStreams(3)
        first = rs.stream("a").random(3).tolist()
        rs.stream("b").random(100)
        again = rs.stream("a").random(3).tolist()
        assert first == again
