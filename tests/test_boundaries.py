"""Boundary-condition tests across the stack."""

import pytest

from repro.beffio import BeffIOConfig, run_beffio
from repro.mpi import World
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.sim import Simulator
from repro.topology import Crossbar, Torus
from repro.util import KB, MB


def env_factory(nprocs):
    def make():
        sim = Simulator()
        fabric = Fabric(sim, Torus((nprocs,), link_bw=500 * MB), NetParams())
        world = World(fabric)
        fs = FileSystem(sim, PFSConfig(
            num_servers=2, stripe_unit=64 * KB, disk_bw=50 * MB,
            ingest_bw=400 * MB, seek_time=2e-3, request_overhead=1e-4,
            disk_block=4 * KB, cache_bytes=64 * MB, client_bw=200 * MB,
            server_net_bw=200 * MB, call_overhead=3e-5,
        ))
        return world, fs

    return make


class TestSingleProcess:
    def test_beffio_runs_on_one_process(self):
        # every collective degenerates to a no-op; the benchmark must
        # still produce a value (a workstation-with-a-disk scenario)
        res = run_beffio(env_factory(1), 256 * MB, BeffIOConfig(T=0.8))
        assert res.nprocs == 1
        assert res.b_eff_io > 0
        assert len({t.pattern_type for t in res.type_results}) == 5

    def test_single_process_world_collectives(self):
        sim = Simulator()
        fabric = Fabric(sim, Torus((1,), link_bw=MB), NetParams())
        world = World(fabric)
        got = []

        def program(comm):
            yield from comm.barrier()
            v = yield from comm.allreduce(8, 42, max)
            g = yield from comm.gather(root=0, nbytes=8, value="x")
            b = yield from comm.bcast(root=0, nbytes=8, data="y")
            got.append((v, g, b))

        world.run(program)
        assert got == [(42, ["x"], "y")]


class TestTinyResources:
    def test_one_server_one_byte_stripe(self):
        sim = Simulator()
        fs = FileSystem(sim, PFSConfig(
            num_servers=1, stripe_unit=1, disk_bw=100.0, ingest_bw=1000.0,
            seek_time=0.0, request_overhead=0.0, disk_block=1,
            cache_bytes=1000, client_bw=1000.0, server_net_bw=1000.0,
            call_overhead=0.0,
        ))
        f = fs.open("tiny")
        from repro.sim import Process

        done = []

        def prog():
            n = yield from fs.write(0, f, 0, 10)
            done.append(n)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [10]

    def test_zero_byte_file_operations(self):
        world, fs = env_factory(2)()
        from repro.mpiio import IOFile

        f = IOFile(world.comm_world, fs, "empty")

        def program(comm):
            n = yield from f.write(comm.rank, 0)
            m = yield from f.read(comm.rank, 0)
            yield from f.close(comm.rank)
            return n + m

        assert world.run(program) == [0, 0]
        assert f.pfsfile.size == 0

    def test_two_proc_crossbar_minimal(self):
        sim = Simulator()
        fabric = Fabric(sim, Crossbar(2, port_bw=MB), NetParams(copy_bw=MB))
        world = World(fabric)

        def program(comm):
            other = 1 - comm.rank
            status = yield from comm.sendrecv(other, 1, other)
            return status.nbytes

        assert world.run(program) == [1, 1]


class TestOversizeRequests:
    def test_write_far_beyond_cache(self):
        world, fs = env_factory(2)()
        from repro.mpiio import IOFile

        f = IOFile(world.comm_world, fs, "big", sync_drains=True)

        def program(comm):
            if comm.rank == 0:
                yield from f.write(0, 200 * MB)  # 3x the 64 MB cache
            yield from f.sync(comm.rank)

        world.run(program)
        assert fs.total_dirty == 0
        assert fs.bytes_to_disk >= 200 * MB - 64 * MB
