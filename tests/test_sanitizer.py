"""Runtime nondeterminism sanitizer: tie shuffling and trace diffing.

The load-bearing cases: a deliberately planted tie-break dependency is
*caught* by :func:`check_commutativity`, and the real benchmarks are
*proved* commutative — bit-identical numbers under shuffled same-time
tie-breakers.
"""

import os
import subprocess
import sys

import pytest

from repro.beff import MeasurementConfig
from repro.beffio import BeffIOConfig
from repro.devtools.sanitizer import (
    EventTrace,
    check_commutativity,
    check_determinism,
    compare_traces,
    sanitized,
)
from repro.machines import get_machine
from repro.reporting.export import to_json
from repro.sim import Simulator
from repro.sim.engine import TIE_SHUFFLE_ENV


def _tick(i):
    def tick():
        pass

    tick.__qualname__ = f"tick{i}"
    return tick


# -- the engine-level shuffle mechanics ---------------------------------


def test_shuffle_reorders_same_time_events_only():
    def order(seed):
        ran = []
        sim = Simulator()
        sim.instrument(tie_shuffle_seed=seed)
        for i in range(6):
            sim.schedule(0.5, lambda i=i: ran.append(i))
        sim.schedule(1.0, lambda: ran.append("late"))
        sim.run()
        return ran

    fifo = order(None)
    assert fifo == [0, 1, 2, 3, 4, 5, "late"]
    shuffled = order(3)
    # the instant's members are permuted, never leaked across instants
    assert sorted(shuffled[:6]) == [0, 1, 2, 3, 4, 5]
    assert shuffled[-1] == "late"
    assert any(order(s)[:6] != fifo[:6] for s in range(1, 6))
    assert order(3) == shuffled  # the permutation itself is deterministic


def test_instrument_rejects_running_simulator():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    with pytest.raises(RuntimeError):
        sim.instrument(tie_shuffle_seed=1)


def test_tie_shuffle_env_toggle(monkeypatch):
    monkeypatch.setenv(TIE_SHUFFLE_ENV, "11")
    ran = []
    sim = Simulator()
    for i in range(6):
        sim.schedule(0.5, lambda i=i: ran.append(i))
    sim.run()
    assert sorted(ran) == [0, 1, 2, 3, 4, 5]
    assert ran != [0, 1, 2, 3, 4, 5]


# -- sanitized() regions and trace capture ------------------------------


def test_sanitized_records_every_simulator_and_does_not_nest():
    with sanitized() as session:
        for _ in range(2):
            sim = Simulator()
            sim.schedule(1.0, _tick(1))
            sim.schedule(1.0, _tick(2))
            sim.run()
        with pytest.raises(RuntimeError, match="nest"):
            with sanitized():
                pass
    assert len(session.traces) == 2
    trace = session.traces[0]
    assert [r.label for r in trace.records] == ["tick1", "tick2"]
    assert trace.groups() == [(1.0, ("tick1", "tick2"))]
    # outside the region, new simulators are untouched
    assert Simulator()._recorder is None


def test_compare_traces_classifies_divergences():
    def trace(labels_by_time):
        t = EventTrace()
        seq = 0
        for time, labels in labels_by_time:
            for label in labels:
                t.append(time, seq, _tick(0))
                t.records[-1] = type(t.records[-1])(time, seq, label)
                seq += 1
        return t

    a = trace([(1.0, ["x", "y"]), (2.0, ["z"])])
    same = trace([(1.0, ["x", "y"]), (2.0, ["z"])])
    assert compare_traces(a, same) == []

    flipped = trace([(1.0, ["y", "x"]), (2.0, ["z"])])
    (d,) = compare_traces(a, flipped)
    assert (d.kind, d.time) == ("order", 1.0)
    assert "order divergence" in d.describe()

    forked = trace([(1.0, ["x", "w"]), (2.0, ["z"])])
    assert [d.kind for d in compare_traces(a, forked)] == ["content"]
    shorter = trace([(1.0, ["x", "y"])])
    assert [d.kind for d in compare_traces(a, shorter)] == ["content"]


# -- the planted tie-break dependency is caught -------------------------


def _order_dependent_run():
    """A 'benchmark' whose result is the arrival order of a 3-way tie."""
    ran = []
    sim = Simulator()
    for i in range(3):
        sim.schedule(1.0, lambda i=i: ran.append(i))
    sim.run()
    return tuple(ran)


def test_commutativity_check_catches_planted_dependency():
    report = check_commutativity(_order_dependent_run, seeds=range(1, 9))
    assert not report.ok
    assert report.failing_seeds()
    assert report.baseline_result == (0, 1, 2)
    assert "TIE-BREAK DEPENDENCY" in report.describe()
    # the divergence report names the instant of the permuted tie
    failing = [r for r in report.runs if not r.result_equal]
    assert any(d.kind == "order" and d.time == 1.0
               for r in failing for d in r.divergences)


def test_commutativity_check_passes_commutative_handlers():
    def run():
        out = {}
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda i=i: out.__setitem__(i, i * i))
        sim.run()
        return out

    report = check_commutativity(run, seeds=(1, 2, 3))
    assert report.ok
    assert "commutative" in report.describe()
    # the probe actually exercised same-time reorderings
    assert any(d.kind == "order" for r in report.runs for d in r.divergences)


def test_determinism_check():
    assert check_determinism(_order_dependent_run).ok  # identical runs agree
    state = iter(range(100))

    def leaky():
        sim = Simulator()
        sim.schedule(1.0 + next(state), _tick(0))
        sim.run()
        return 0

    report = check_determinism(leaky)
    assert not report.ok
    assert "NONDETERMINISM" in report.describe()
    with pytest.raises(ValueError):
        check_determinism(_order_dependent_run, repeats=1)


# -- the real benchmarks are commutative --------------------------------


def test_beff_is_bit_identical_under_tie_shuffle():
    spec = get_machine("t3e")
    config = MeasurementConfig(methods=("sendrecv",), max_looplength=1)

    report = check_commutativity(
        lambda: spec.run_beff(8, config),
        seeds=(1, 2),
        equal=lambda a, b: to_json(a) == to_json(b),
    )
    assert report.ok, report.describe()
    reordered = sum(1 for r in report.runs for d in r.divergences if d.kind == "order")
    assert reordered > 0, "shuffle never exercised a tie — probe is dead"


def test_beffio_is_bit_identical_under_tie_shuffle():
    spec = get_machine("sp")
    config = BeffIOConfig(T=2.0, pattern_types=(0, 3))

    report = check_commutativity(
        lambda: spec.run_beffio(4, config),
        seeds=(1,),
        equal=lambda a, b: to_json(a) == to_json(b),
    )
    assert report.ok, report.describe()


def test_cli_sanitize_flag_end_to_end():
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-c",
         "import sys; from repro.cli import main_beff; "
         "sys.exit(main_beff(['--machine', 't3e', '--procs', '4', "
         "'--methods', 'sendrecv', '--sanitize']))"],
        capture_output=True, text=True, env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    assert "sanitizer: commutative" in proc.stdout
