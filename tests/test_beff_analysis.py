"""Tests for the b_eff aggregation formula."""

import pytest

from repro.beff.analysis import (
    aggregate,
    best_bandwidths,
    per_pattern_averages,
    two_step_logavg,
)
from repro.beff.measurement import MeasurementRecord
from repro.util import logavg


def rec(pattern, kind, size, method="nonblocking", rep=0, bw=100.0):
    return MeasurementRecord(
        pattern=pattern, kind=kind, size=size, method=method,
        repetition=rep, looplength=1, time=1.0, bandwidth=bw,
    )


class TestBestBandwidths:
    def test_max_over_methods_and_reps(self):
        records = [
            rec("p", "ring", 1, method="sendrecv", bw=50),
            rec("p", "ring", 1, method="nonblocking", bw=80),
            rec("p", "ring", 1, method="nonblocking", rep=1, bw=70),
        ]
        assert best_bandwidths(records) == {("p", 1): 80}

    def test_sizes_kept_separate(self):
        records = [rec("p", "ring", 1, bw=10), rec("p", "ring", 2, bw=30)]
        best = best_bandwidths(records)
        assert best[("p", 1)] == 10
        assert best[("p", 2)] == 30


class TestPerPatternAverages:
    def test_average_over_sizes(self):
        records = [rec("p", "ring", s, bw=s * 10.0) for s in (1, 2, 3)]
        out = per_pattern_averages(records, num_sizes=3)
        assert out["p"] == pytest.approx(20.0)

    def test_missing_size_detected(self):
        records = [rec("p", "ring", 1)]
        with pytest.raises(ValueError, match="expected 3"):
            per_pattern_averages(records, num_sizes=3)


class TestTwoStepLogavg:
    def test_equal_weighting_of_kinds(self):
        values = {"ring": [100.0] * 6, "random": [25.0] * 6}
        assert two_step_logavg(values) == pytest.approx(50.0)

    def test_requires_both_kinds(self):
        with pytest.raises(ValueError):
            two_step_logavg({"ring": [1.0]})


class TestAggregate:
    def _records(self):
        out = []
        for p in range(2):
            for kind, base in (("ring", 100.0), ("random", 50.0)):
                for size in (1, 2):
                    out.append(
                        rec(f"{kind}-{p}", kind, size, bw=base * size)
                    )
        return out

    def test_full_formula(self):
        records = self._records()
        agg = aggregate(records, num_sizes=2, lmax=2)
        # per pattern: (100+200)/2=150 rings, (50+100)/2=75 randoms
        assert agg["per_pattern"]["ring-0"] == pytest.approx(150.0)
        assert agg["b_eff"] == pytest.approx(logavg([150.0, 75.0]))
        # at lmax: rings 200, randoms 100
        assert agg["b_eff_at_lmax"] == pytest.approx(logavg([200.0, 100.0]))
        assert agg["ring_only_at_lmax"] == pytest.approx(200.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([], 2, 2)

    def test_inconsistent_kind_rejected(self):
        records = [rec("p", "ring", 1), rec("p", "random", 2)]
        with pytest.raises(ValueError, match="inconsistent"):
            aggregate(records, 2, 2)
