"""Equivalence of the incremental fluid engine and the reference oracle.

The incremental :class:`FlowNetwork` batches same-instant membership
changes and re-solves only the affected link component with a
count-based progressive-filling solver.  These tests pin it to the
pure :func:`maxmin_allocate` oracle and to the ``reference`` engine
mode (the seed's full-recompute path) on randomized link/route sets,
including rate-capped private links and empty routes.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import FlowNetwork, Process, Simulator, Sleep, maxmin_allocate

#: a small fixed link pool: three shared links of uneven capacity
CAPACITIES = (7.0, 11.0, 3.0)

flow_spec = st.tuples(
    st.lists(st.integers(min_value=0, max_value=2), min_size=0, max_size=3, unique=True),
    st.floats(min_value=1.0, max_value=500.0),
    st.floats(min_value=0.0, max_value=8.0),
    st.one_of(st.none(), st.floats(min_value=0.5, max_value=20.0)),
)


def _drive(mode, specs):
    """Run a flow schedule on one engine mode; return (finishes, net)."""
    sim = Simulator()
    net = FlowNetwork(sim, mode=mode)
    links = [net.add_link(c) for c in CAPACITIES]
    finishes = {}

    def starter(idx, route, nbytes, start, cap):
        if start:
            yield Sleep(start)
        ev = net.start_flow([links[i] for i in route], nbytes, rate_cap=cap)
        yield ev
        finishes[idx] = sim.now

    for idx, (route, nbytes, start, cap) in enumerate(specs):
        Process(sim, starter(idx, route, nbytes, start, cap))
    sim.run_to_completion()
    return finishes, net


class TestIncrementalMatchesReference:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(flow_spec, min_size=1, max_size=14))
    def test_finish_times_and_counters_match(self, specs):
        fin_inc, net_inc = _drive("incremental", specs)
        fin_ref, net_ref = _drive("reference", specs)
        assert fin_inc.keys() == fin_ref.keys()
        for idx in fin_ref:
            assert fin_inc[idx] == pytest.approx(fin_ref[idx], rel=1e-9, abs=1e-9)
        assert net_inc.bytes_completed == pytest.approx(net_ref.bytes_completed)
        assert net_inc.flows_completed == net_ref.flows_completed
        assert net_inc.active_flows == net_ref.active_flows == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(flow_spec, min_size=1, max_size=14))
    def test_link_bytes_match(self, specs):
        _, net_inc = _drive("incremental", specs)
        _, net_ref = _drive("reference", specs)
        for link_id, ref_bytes in net_ref.link_bytes.items():
            assert net_inc.link_bytes.get(link_id, 0.0) == pytest.approx(
                ref_bytes, rel=1e-9, abs=1e-6
            )


class TestAllocationMatchesOracle:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(flow_spec, min_size=1, max_size=12))
    def test_standing_rates_match_pure_maxmin(self, specs):
        """At a quiescent instant the incremental engine's allocation
        equals one oracle solve over the full active set."""
        sim = Simulator()
        net = FlowNetwork(sim)
        links = [net.add_link(c) for c in CAPACITIES]

        started = []

        def starter(route, nbytes, cap):
            ev = net.start_flow([links[i] for i in route], nbytes, rate_cap=cap)
            started.append(ev)
            yield ev

        for route, nbytes, _start, cap in specs:
            Process(sim, starter(route, nbytes, cap))
        # advance through the start instant only (no flow can finish
        # before 1/50 s given >= 1 byte over <= 50 B/s of headroom)
        sim.run(until=0.0)
        rates = net.current_rates()
        if not rates:
            return  # every spec was an uncapped empty route
        flows = [net._flows[fid] for fid in sorted(rates)]
        capacities = {
            link_id: net.link(link_id).capacity
            for flow in flows
            for link_id in flow.route
        }
        oracle = maxmin_allocate(capacities, [flow.route for flow in flows])
        for flow, expect in zip(flows, oracle):
            assert rates[flow.flow_id] == pytest.approx(expect, rel=1e-9)

    def test_empty_route_with_cap_gets_the_cap(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        done = []

        def prog():
            yield net.start_flow([], 10.0, rate_cap=2.0)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [pytest.approx(5.0)]

    def test_batched_start_is_one_allocation(self):
        """N simultaneous starts collapse into a single solver call."""
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_link(10.0)

        def prog():
            yield net.start_flow([link], 10.0)

        for _ in range(16):
            Process(sim, prog())
        sim.run_to_completion()
        # one solve covers all 16 starts; the joint completion empties
        # the network, which needs no solve at all
        assert net.allocations == 1
        assert net.flows_completed == 16

    def test_disjoint_component_not_resolved(self):
        """A membership change on link A must not re-solve link B's flows."""
        sim = Simulator()
        net = FlowNetwork(sim)
        a, b = net.add_link(10.0), net.add_link(10.0)

        def prog(route, nbytes, start=0.0):
            if start:
                yield Sleep(start)
            yield net.start_flow(route, nbytes)

        Process(sim, prog([a], 100.0))  # alone until t=1, done at t=11
        Process(sim, prog([b], 100.0))  # never shares: done at t=10
        Process(sim, prog([a], 10.0, start=1.0))  # joins link a, done at t=3
        sim.run_to_completion()
        assert net.flows_completed == 3
        # solves: the t=0 batch (2 flows), the t=1 join (link a's 2
        # flows only), and the t=3 departure (link a's survivor); link
        # b's flow is never re-solved, and completions that empty a
        # component cost nothing
        assert net.allocations == 3
        assert net.flows_solved == 2 + 2 + 1
