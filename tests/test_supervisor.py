"""The supervised executor: deadlines, heartbeats, backoff, poison.

The supervisor's load-bearing claims: backoff timing is a pure
function of the cell fingerprint (reproducible even on the failure
path), every attempt terminates — by result, error, deadline kill or
heartbeat kill — and a cell that exhausts ``max_failures`` becomes a
:class:`PoisonRecord` carrying the full per-attempt provenance instead
of aborting the campaign.  Chaos-driven end-to-end campaigns live in
``test_chaos.py``; this file covers the supervisor's own mechanics.
"""

import json

import pytest

from repro.beff.measurement import MeasurementConfig
from repro.runtime.supervisor import (
    FAILURE_KINDS,
    AttemptFailure,
    PoisonRecord,
    SupervisedTask,
    SupervisionPolicy,
    backoff_delay,
    supervise,
)

CFG = MeasurementConfig(backend="analytic")

FP_A = "ab" * 32
FP_B = "cd" * 32


def _task(key=FP_A, benchmark="b_eff", machine="t3e", nprocs=2, config=CFG):
    return SupervisedTask(
        key=key, benchmark=benchmark, machine=machine, nprocs=nprocs, config=config
    )


class TestBackoffDelay:
    def test_deterministic_per_fingerprint_and_attempt(self):
        assert backoff_delay(FP_A, 1, 0.5) == backoff_delay(FP_A, 1, 0.5)
        assert backoff_delay(FP_A, 1, 0.5) != backoff_delay(FP_B, 1, 0.5)
        assert backoff_delay(FP_A, 1, 0.5) != backoff_delay(FP_A, 2, 0.5)

    def test_exponential_envelope_with_jitter(self):
        # delay for attempt k lies in [0.5, 1.0) x base * 2**(k-1)
        for attempt in (1, 2, 3, 4):
            nominal = 0.25 * 2 ** (attempt - 1)
            d = backoff_delay(FP_A, attempt, 0.25)
            assert 0.5 * nominal <= d < nominal

    def test_cap_bounds_the_nominal_delay(self):
        d = backoff_delay(FP_A, 10, 1.0, cap_s=2.0)
        assert d < 2.0

    def test_zero_base_disables_backoff(self):
        assert backoff_delay(FP_A, 3, 0.0) == 0.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            backoff_delay(FP_A, 0, 0.5)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = SupervisionPolicy()
        assert policy.max_failures == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="deadline"):
            SupervisionPolicy(deadline_s=0.0)
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            SupervisionPolicy(heartbeat_timeout_s=-1.0)
        with pytest.raises(ValueError, match="exceed"):
            SupervisionPolicy(heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5)
        with pytest.raises(ValueError, match="max_failures"):
            SupervisionPolicy(max_failures=0)
        with pytest.raises(ValueError, match="backoff"):
            SupervisionPolicy(backoff_base_s=-0.1)


class TestProvenanceTypes:
    def test_attempt_failure_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            AttemptFailure(kind="mystery", message="?")

    def test_attempt_failure_roundtrip(self):
        for kind in FAILURE_KINDS:
            failure = AttemptFailure(
                kind=kind, message="m", worker_traceback="tb", elapsed_s=1.5
            )
            assert AttemptFailure.from_dict(failure.to_dict()) == failure

    def test_poison_record_roundtrip_and_describe(self):
        record = PoisonRecord(
            key=FP_A,
            benchmark="b_eff",
            machine="t3e",
            nprocs=4,
            attempts=(
                AttemptFailure(kind="crash", message="exit 9"),
                AttemptFailure(kind="error", message="RuntimeError: boom"),
            ),
        )
        assert PoisonRecord.from_dict(record.to_dict()) == record
        assert record.to_dict()["poisoned"] is True
        assert record.last.kind == "error"
        text = record.describe()
        assert "b_eff" in text and "t3e" in text and "nprocs=4" in text
        assert "2 attempt(s)" in text and "crash,error" in text

    def test_export_dict_drops_wall_clock_timings(self):
        """Exported poison trees are pure functions of the run's inputs.

        Two degraded runs of the same cell measure different attempt
        durations; their exports must still be byte-identical, so no
        ``elapsed_s`` may appear anywhere in the exported tree.
        """
        def record(elapsed):
            return PoisonRecord(
                key=FP_A,
                benchmark="b_eff",
                machine="t3e",
                nprocs=4,
                attempts=(
                    AttemptFailure(
                        kind="crash", message="exit 9", elapsed_s=elapsed
                    ),
                ),
            )

        fast, slow = record(0.25), record(7.5)
        assert fast.to_export_dict() == slow.to_export_dict()
        exported = json.dumps(fast.to_export_dict(), sort_keys=True)
        assert "elapsed_s" not in exported
        assert fast.to_export_dict()["attempts"][0] == {
            "kind": "crash", "message": "exit 9", "worker_traceback": ""
        }
        # ... while the journal form keeps the timing for diagnostics
        assert fast.to_dict()["attempts"][0]["elapsed_s"] == 0.25


class TestSupervise:
    def test_clean_run_returns_validated_payloads(self):
        from repro.runtime.envelope import ResultEnvelope
        from repro.runtime.spec import run_spec

        spec = run_spec("b_eff", "t3e", 2, CFG)
        run = supervise(
            [_task(key=spec.fingerprint())], SupervisionPolicy(max_failures=1)
        )
        assert run.poisoned == ()
        assert run.attempts == 1
        envelope = ResultEnvelope.from_dict(run.results[spec.fingerprint()])
        assert envelope.values["b_eff"] > 0

    def test_duplicate_keys_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            supervise([_task(), _task()], SupervisionPolicy())

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            supervise([_task()], SupervisionPolicy(), jobs=0)

    def test_error_poisons_after_max_failures(self, monkeypatch):
        # an unknown machine key raises inside the worker every time
        run = supervise(
            [_task(machine="no-such-machine")],
            SupervisionPolicy(max_failures=2),
        )
        assert run.results == {}
        assert len(run.poisoned) == 1
        record = run.poisoned[0]
        assert [a.kind for a in record.attempts] == ["error", "error"]
        assert record.machine == "no-such-machine"
        assert run.attempts == 2
        assert "Traceback" in record.last.worker_traceback

    def test_deadline_kills_and_records_kind(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_HANG", "1,2")
        run = supervise(
            [_task()],
            SupervisionPolicy(
                deadline_s=0.5, heartbeat_interval_s=0.05, max_failures=2
            ),
        )
        assert len(run.poisoned) == 1
        kinds = {a.kind for a in run.poisoned[0].attempts}
        # the hang fires before the heartbeat thread starts, so with no
        # heartbeat timeout configured only the deadline can catch it
        assert kinds == {"deadline"}
        for attempt in run.poisoned[0].attempts:
            assert attempt.elapsed_s >= 0.5

    def test_heartbeat_loss_kills_faster_than_deadline(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_HANG", "1")
        run = supervise(
            [_task()],
            SupervisionPolicy(
                deadline_s=30.0,
                heartbeat_interval_s=0.05,
                heartbeat_timeout_s=0.5,
                max_failures=1,
            ),
        )
        assert [a.kind for a in run.poisoned[0].attempts] == ["heartbeat-lost"]
        assert run.poisoned[0].attempts[0].elapsed_s < 10.0
        # the message lands in exported result trees, so it must name
        # only the configured threshold, never the measured silence
        assert run.poisoned[0].attempts[0].message == (
            "heartbeat silence exceeded the 0.5s threshold"
        )

    def test_crash_is_retried_then_succeeds(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "1")
        run = supervise([_task()], SupervisionPolicy(max_failures=3))
        assert run.poisoned == ()
        assert run.attempts == 2
        assert len(run.results) == 1

    def test_corrupt_return_is_detected_and_retried(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_CORRUPT", "1")
        run = supervise([_task()], SupervisionPolicy(max_failures=3))
        assert run.poisoned == ()
        assert run.attempts == 2

    def test_poisons_sorted_by_cell_identity(self, monkeypatch):
        run = supervise(
            [
                _task(key=FP_B, machine="zz-missing", nprocs=4),
                _task(key=FP_A, machine="aa-missing", nprocs=2),
            ],
            SupervisionPolicy(max_failures=1),
            jobs=2,
        )
        assert [p.machine for p in run.poisoned] == ["aa-missing", "zz-missing"]

    def test_parallel_supervised_matches_serial(self):
        from repro.runtime.spec import run_spec

        specs = [run_spec("b_eff", "t3e", n, CFG) for n in (2, 4)]
        tasks = [
            _task(key=s.fingerprint(), nprocs=s.nprocs) for s in specs
        ]
        serial = supervise(tasks, SupervisionPolicy(max_failures=1), jobs=1)
        parallel = supervise(tasks, SupervisionPolicy(max_failures=1), jobs=2)
        assert serial.results == parallel.results
