"""The escape hatch, used well and used badly."""

import time


def probe():
    t0 = time.time()  # repro-lint: blessed-source -- seed=wall_probe
    return t0


def sloppy():
    t1 = time.time()  # repro-lint: blessed-source
    return t1
