"""The taint source: a bare wall-clock read behind a function call."""

import time


def stamp():
    return time.time()
