"""Unseeded randomness flowing into a fingerprint input."""

import random

from repro.runtime.spec import run_spec


def make():
    return run_spec(seed=random.random())
