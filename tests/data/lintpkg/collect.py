"""Set-iteration order leaking into an envelope."""

from repro.runtime.envelope import ResultEnvelope


def gather():
    names = []
    for key in {"b_eff", "b_eff_io"}:
        names.append(key)
    return ResultEnvelope(values=names)
