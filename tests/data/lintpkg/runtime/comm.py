"""Connection-send fixture: guarded and bare pipe writes."""


def publish(conn, item):
    conn.send(item)


def publish_safe(conn, send_lock, item):
    with send_lock:
        conn.send(item)
