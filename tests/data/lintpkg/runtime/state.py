"""Lock-discipline fixture: one attribute, two disciplines."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count = self.count + 1

    def reset(self):
        self.count = 0
