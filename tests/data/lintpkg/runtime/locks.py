"""flock-helper fixture: a disciplined helper and a rogue reader."""

import fcntl


def locked_read(path):
    with open(path + ".lock") as fh:
        fcntl.flock(fh, fcntl.LOCK_SH)
        return fh.read()


def peek(path):
    return open(path + ".lock").read()
