"""The sink end of the cross-module chain, plus the blessed twin."""

from lintpkg.blessed import probe
from lintpkg.mixer import payload
from repro.reporting.export import write_json_atomic


def flush(path):
    write_json_atomic(path, payload(3))


def flush_blessed(path):
    write_json_atomic(path, {"t0": probe()})
