"""Planted-violation fixture package for the whole-program engine.

Every module here exists to exercise one interprocedural rule: the
``clock -> mixer -> runtime/writer`` chain crosses three modules
before reaching a sink, ``runtime/`` carries the concurrency
discipline violations, and ``blessed`` holds both the well-formed and
the malformed escape hatch.  ``tests/test_lint_engine.py`` pins the
exact findings; nothing in here is ever imported at runtime.
"""
