"""The middle hop: taint enters a container and changes shape here."""

from lintpkg.clock import stamp


def payload(n):
    return {"t": stamp(), "n": n}
