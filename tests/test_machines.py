"""Tests for the machine library: construction + calibration shapes."""

import pytest

from repro.beff import MeasurementConfig
from repro.beffio import BeffIOConfig
from repro.machines import MACHINES, get_machine, cray_t3e_900, hitachi_sr8000, nec_sx5
from repro.util import GB, MB

FAST = MeasurementConfig(methods=("sendrecv", "nonblocking"), max_looplength=1)
FAST_AN = MeasurementConfig(
    methods=("sendrecv", "nonblocking"), max_looplength=1, backend="analytic"
)


class TestLibrary:
    def test_all_machines_construct(self):
        for key in MACHINES:
            spec = get_machine(key)
            assert spec.name
            assert spec.memory_per_proc > 0

    def test_unknown_machine(self):
        with pytest.raises(KeyError, match="available"):
            get_machine("cm5")

    def test_unknown_machine_suggests_close_match(self):
        with pytest.raises(KeyError, match="did you mean 'dragonfly'"):
            get_machine("dragonfIy")

    def test_modern_zoo_registered(self):
        for key in ("dragonfly", "fattree-2to1", "gpucluster", "bbpfs"):
            assert key in MACHINES
        # journal directory names join benchmark and machine with "__"
        assert all(":" not in key for key in MACHINES)

    def test_modern_zoo_io_configs(self):
        assert get_machine("dragonfly").pfs is not None
        assert get_machine("bbpfs").pfs is not None
        assert get_machine("fattree-2to1").pfs is None
        assert get_machine("gpucluster").pfs is None

    def test_topologies_build(self):
        for key in MACHINES:
            spec = get_machine(key)
            n = spec.procs_choices[0] if spec.procs_choices else 4
            fabric = spec.fabric_factory(n)()
            assert fabric.topology.nprocs == n

    def test_fabric_factory_validation(self):
        with pytest.raises(ValueError):
            cray_t3e_900().fabric_factory(0)

    def test_io_env_only_where_configured(self):
        spec = get_machine("sx4")  # no PFS configured
        with pytest.raises(ValueError):
            spec.io_env_factory(4)
        env = get_machine("t3e").io_env_factory(4)()
        world, fs = env
        assert fs.config.num_servers == 10

    def test_rmax(self):
        spec = cray_t3e_900()
        assert spec.rmax(512) == pytest.approx(0.47e9 * 512)


class TestCalibrationShapes:
    """Do the simulated machines show the paper's qualitative Table 1?"""

    def test_t3e_lmax_is_1mb(self):
        res = cray_t3e_900().run_beff(4, FAST)
        assert res.lmax == 1 * MB

    def test_t3e_pingpong_near_330(self):
        from repro.beff import run_detail

        spec = cray_t3e_900()
        det = run_detail(spec.fabric_factory(4), spec.memory_per_proc, iterations=1)
        assert det["ping-pong"].bandwidth / MB == pytest.approx(330, rel=0.15)

    def test_t3e_ring_per_proc_near_200(self):
        spec = cray_t3e_900()
        res = spec.run_beff(8, FAST)
        per_proc = res.ring_only_at_lmax_per_proc / MB
        assert 140 < per_proc < 280  # paper: 190-210

    def test_t3e_random_below_ring(self):
        spec = cray_t3e_900()
        res = spec.run_beff(27, FAST_AN)  # 3x3x3 torus
        assert res.logavg_random < res.logavg_ring

    def test_sr8000_placement_contrast(self):
        seq = hitachi_sr8000("sequential").run_beff(24, FAST)
        rr = hitachi_sr8000("round-robin").run_beff(24, FAST)
        # paper: 400 vs 110 MB/s ring per-proc at Lmax
        assert seq.ring_only_at_lmax_per_proc > 2 * rr.ring_only_at_lmax_per_proc

    def test_sx5_per_proc_in_gbs(self):
        res = nec_sx5().run_beff(4, FAST)
        per_proc = res.ring_only_at_lmax_per_proc / MB
        assert per_proc > 4000  # paper: 8758 MB/s

    def test_shared_memory_beats_distributed_per_proc(self):
        sx5 = nec_sx5().run_beff(4, FAST)
        t3e = cray_t3e_900().run_beff(4, FAST)
        assert sx5.b_eff_per_proc > 10 * t3e.b_eff_per_proc

    def test_balance_factor_ordering(self):
        # Fig. 1: the T3E is among the best-balanced machines; vector
        # machines deliver more bytes/flop than the HP-V.
        from repro.beff import balance_factor

        t3e = cray_t3e_900()
        res = t3e.run_beff(8, FAST)
        bf_t3e = balance_factor(res.b_eff, t3e.rmax(8))
        assert bf_t3e > 0.01  # paper Fig. 1: T3E ~0.04 B/flop


class TestMachineIO:
    def test_t3e_beffio_runs(self):
        res = cray_t3e_900().run_beffio(4, BeffIOConfig(T=1.0, pattern_types=(0, 2)))
        assert res.b_eff_io > 0

    def test_sp_beffio_runs(self):
        res = get_machine("sp").run_beffio(4, BeffIOConfig(T=1.0, pattern_types=(0, 2)))
        assert res.b_eff_io > 0
