"""Tests for coroutine processes, Sleep, SimEvent, wait_all."""

import pytest

from repro.sim import Process, SimEvent, Simulator, Sleep, wait_all


class TestSleep:
    def test_sleep_advances_time(self):
        sim = Simulator()
        times = []

        def prog():
            yield Sleep(1.0)
            times.append(sim.now)
            yield Sleep(2.5)
            times.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert times == [1.0, 3.5]

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-1.0)

    def test_zero_sleep_allowed(self):
        sim = Simulator()

        def prog():
            yield Sleep(0.0)

        Process(sim, prog())
        sim.run_to_completion()


class TestSimEvent:
    def test_trigger_resumes_waiter_with_value(self):
        sim = Simulator()
        ev = SimEvent(sim)
        got = []

        def waiter():
            got.append((yield ev))

        def firer():
            yield Sleep(2.0)
            ev.trigger("payload")

        Process(sim, waiter())
        Process(sim, firer())
        sim.run_to_completion()
        assert got == ["payload"]
        assert sim.now == 2.0

    def test_wait_on_already_triggered_event_returns_immediately(self):
        sim = Simulator()
        ev = SimEvent(sim)
        ev.trigger(42)
        got = []

        def prog():
            yield Sleep(1.0)
            got.append((yield ev))
            got.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert got == [42, 1.0]

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        ev = SimEvent(sim)
        got = []

        def waiter(tag):
            value = yield ev
            got.append((tag, value, sim.now))

        for i in range(3):
            Process(sim, waiter(i))

        def firer():
            yield Sleep(1.0)
            ev.trigger("x")

        Process(sim, firer())
        sim.run_to_completion()
        assert got == [(0, "x", 1.0), (1, "x", 1.0), (2, "x", 1.0)]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = SimEvent(sim)
        ev.trigger()
        with pytest.raises(RuntimeError):
            ev.trigger()


class TestDelegation:
    def test_yield_from_subroutine(self):
        sim = Simulator()
        results = []

        def sub(x):
            yield Sleep(1.0)
            return x * 2

        def prog():
            value = yield from sub(21)
            results.append((value, sim.now))

        Process(sim, prog())
        sim.run_to_completion()
        assert results == [(42, 1.0)]

    def test_process_result_and_done_event(self):
        sim = Simulator()

        def prog():
            yield Sleep(1.0)
            return "done-value"

        p = Process(sim, prog())
        watched = []

        def watcher():
            value = yield p.done_event
            watched.append(value)

        Process(sim, watcher())
        sim.run_to_completion()
        assert p.finished
        assert p.result == "done-value"
        assert watched == ["done-value"]

    def test_invalid_yield_raises_typeerror(self):
        sim = Simulator()

        def prog():
            yield "not a primitive"

        Process(sim, prog(), name="bad")
        with pytest.raises(TypeError, match="bad"):
            sim.run()


class TestWaitAll:
    def test_wait_all_completes_at_last_trigger(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(3)]
        got = []

        def prog():
            values = yield from wait_all(evs)
            got.append((values, sim.now))

        Process(sim, prog())
        for i, (ev, t) in enumerate(zip(evs, [3.0, 1.0, 2.0])):
            sim.schedule(t, lambda ev=ev, i=i: ev.trigger(i))
        sim.run_to_completion()
        assert got == [([0, 1, 2], 3.0)]

    def test_wait_all_empty(self):
        sim = Simulator()
        got = []

        def prog():
            values = yield from wait_all([])
            got.append(values)
            yield Sleep(0.0)

        Process(sim, prog())
        sim.run_to_completion()
        assert got == [[]]


class TestDeterminism:
    def test_two_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()
            trace = []

            def prog(tag, delay):
                yield Sleep(delay)
                trace.append((tag, sim.now))
                yield Sleep(delay)
                trace.append((tag, sim.now))

            for tag in range(8):
                Process(sim, prog(tag, 0.5 + 0.25 * (tag % 3)))
            sim.run_to_completion()
            return trace

        assert build() == build()
