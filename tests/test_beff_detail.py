"""Focused tests for the b_eff detail patterns."""

import pytest

from repro.beff.detail import _interleaved_cycle, run_detail
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.topology import ClusteredSMP, Torus
from repro.util import GB, MB

MEM = 512 * MB


def torus_factory(n, link_bw=200 * MB):
    def make():
        sim = Simulator()
        return Fabric(sim, Torus((n,), link_bw=link_bw), NetParams(latency=5e-6))

    return make


class TestInterleavedCycle:
    def test_even(self):
        assert _interleaved_cycle(6) == [0, 3, 1, 4, 2, 5]

    def test_odd(self):
        order = _interleaved_cycle(7)
        assert sorted(order) == list(range(7))
        assert order[-1] == 6

    def test_cycle_has_long_hops(self):
        order = _interleaved_cycle(8)
        hops = [abs(order[(i + 1) % 8] - order[i]) for i in range(8)]
        assert max(hops) >= 4


class TestDetailRecords:
    def test_worst_cycle_below_natural_ring(self):
        # the interleaved cycle crosses the torus; the natural ring
        # pattern does not — worst-cycle must lose on a 1-D torus
        res = run_detail(torus_factory(16), MEM, iterations=1)
        assert res["worst-cycle"].bandwidth < res["bisection-near"].bandwidth

    def test_cartesian_dims_cover_cartesian_factorization(self):
        res = run_detail(torus_factory(12), MEM, iterations=1)
        # 12 = 4x3 (2-D) and 3x2x2 (3-D): every live dim measured
        assert "cart2d-dim0" in res and "cart2d-dim1" in res
        assert "cart3d-dim0" in res and "cart3d-dim1" in res and "cart3d-dim2" in res
        assert "cart2d-all" in res and "cart3d-all" in res

    def test_prime_process_count(self):
        # 7 is prime: dims_create gives (7,1) and (7,1,1); only one
        # live dimension per partitioning
        res = run_detail(torus_factory(7), MEM, iterations=1)
        assert "cart2d-dim0" in res
        assert "cart2d-dim1" not in res
        assert "cart3d-dim1" not in res

    def test_all_records_have_positive_bandwidth(self):
        res = run_detail(torus_factory(8), MEM, iterations=2)
        for name, rec in res.items():
            assert rec.bandwidth > 0, name
            assert rec.time > 0, name
            assert rec.size == 4 * MB  # Lmax of 512 MB memory

    def test_smp_cluster_cart_dims_feel_hierarchy(self):
        # on a 2x8 cluster with sequential placement, a (2, 8) Cartesian
        # partitioning's dim1 (inside nodes) beats dim0 (across nodes)
        def make():
            sim = Simulator()
            topo = ClusteredSMP(2, 8, membus_bw=4 * GB, nic_bw=200 * MB)
            return Fabric(sim, topo, NetParams(latency=10e-6, copy_bw=2 * GB))

        res = run_detail(make, MEM, iterations=1)
        assert res["cart2d-dim1"].bandwidth > 2 * res["cart2d-dim0"].bandwidth
