"""End-to-end tests of b_eff_io on a small simulated I/O subsystem."""

import pytest

from repro.beffio import BeffIOConfig, build_patterns, run_beffio
from repro.beffio.analysis import ACCESS_METHODS, TypeResult, method_value, partition_value, system_value
from repro.beffio.scheduler import pattern_time
from repro.beffio.segments import chunk_repetitions, estimate_segment_size
from repro.mpi import World
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import GB, KB, MB

MEM = 256 * MB  # M_PART = 2 MB


def env_factory(nprocs=4, **fs_over):
    def make():
        sim = Simulator()
        fabric = Fabric(
            sim, Torus((nprocs,), link_bw=1000 * MB),
            NetParams(latency=5e-6, msg_rate_cap=500 * MB),
        )
        world = World(fabric)
        cfg = dict(
            num_servers=4,
            stripe_unit=64 * KB,
            disk_bw=100 * MB,
            ingest_bw=800 * MB,
            seek_time=2e-3,
            request_overhead=1e-4,
            disk_block=4 * KB,
            cache_bytes=256 * MB,
            client_bw=400 * MB,
            server_net_bw=400 * MB,
            call_overhead=3e-5,
        )
        cfg.update(fs_over)
        fs = FileSystem(sim, PFSConfig(**cfg))
        return world, fs

    return make


FAST = BeffIOConfig(T=1.5)


class TestRunBeffIO:
    @pytest.fixture(scope="class")
    def result(self):
        return run_beffio(env_factory(4), MEM, FAST)

    def test_partition_value_positive(self, result):
        assert result.b_eff_io > 0
        assert result.nprocs == 4
        assert result.mpart == 2 * MB

    def test_all_methods_and_types_measured(self, result):
        combos = {(t.method, t.pattern_type) for t in result.type_results}
        assert combos == {(m, t) for m in ACCESS_METHODS for t in range(5)}

    def test_partition_weighting(self, result):
        expected = partition_value(result.method_values)
        assert result.b_eff_io == pytest.approx(expected)

    def test_pattern_runs_cover_all_patterns(self, result):
        for method in ACCESS_METHODS:
            numbers = [r.number for r in result.pattern_table(method)]
            assert numbers == list(range(43))

    def test_u_zero_patterns_ran_once(self, result):
        for r in result.pattern_table("write"):
            if r.number in (0, 9, 17, 25):
                assert r.reps == 1

    def test_bytes_accounting(self, result):
        for r in result.pattern_runs:
            if r.pattern_type == 0:
                assert r.nbytes == r.reps * r.L * 4 or r.reps == 0
            # reps recorded are max across ranks; for noncollective
            # patterns bytes <= reps * l * n
            assert r.nbytes <= max(1, r.reps) * r.L * 4

    def test_read_never_exceeds_write_reps(self, result):
        write_reps = {r.number: r.reps for r in result.pattern_table("write")}
        for r in result.pattern_table("read"):
            assert r.reps <= write_reps[r.number]

    def test_segment_size_computed(self, result):
        assert result.segment_size is not None
        assert result.segment_size % MB == 0
        assert result.segment_size >= MB

    def test_deterministic(self):
        a = run_beffio(env_factory(2), MEM, BeffIOConfig(T=0.8))
        b = run_beffio(env_factory(2), MEM, BeffIOConfig(T=0.8))
        assert a.b_eff_io == b.b_eff_io


class TestSubsetsAndConfig:
    def test_subset_of_types(self):
        cfg = BeffIOConfig(T=0.8, pattern_types=(0, 2))
        res = run_beffio(env_factory(2), MEM, cfg)
        types = {t.pattern_type for t in res.type_results}
        assert types == {0, 2}
        assert res.segment_size is None

    def test_segmented_only_uses_fallback(self):
        cfg = BeffIOConfig(T=0.8, pattern_types=(3,))
        res = run_beffio(env_factory(2), MEM, cfg)
        assert res.segment_size is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BeffIOConfig(T=0)
        with pytest.raises(ValueError):
            BeffIOConfig(pattern_types=())
        with pytest.raises(ValueError):
            BeffIOConfig(pattern_types=(7,))
        with pytest.raises(ValueError):
            BeffIOConfig(pattern_types=(1, 1))
        with pytest.raises(ValueError):
            BeffIOConfig(cb_buffer=0)

    def test_type_result_lookup(self):
        res = run_beffio(env_factory(2), MEM, BeffIOConfig(T=0.8, pattern_types=(0,)))
        assert res.type_result("read", 0).pattern_type == 0
        with pytest.raises(KeyError):
            res.type_result("read", 3)


class TestShapes:
    """Qualitative findings of the paper's Sec. 5.3 on our substrate."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_beffio(env_factory(4), MEM, BeffIOConfig(T=2.0))

    def _bw(self, result, method, number):
        for r in result.pattern_table(method):
            if r.number == number:
                return r.bandwidth
        raise KeyError(number)

    def test_scatter_type_handles_small_chunks_best(self, result):
        # 1 kB chunks: type 0 (collective scatter, two-phase) beats the
        # per-chunk types 1 and 2 — "the scattering pattern type 0 is
        # the best on all platforms for small chunk sizes".
        t0_1k = self._bw(result, "write", 5)
        t1_1k = self._bw(result, "write", 13)
        assert t0_1k > t1_1k

    def test_wellformed_beats_nonwellformed(self, result):
        # 1 MB wellformed (No. 19, type 2) vs 1 MB+8 (No. 24)
        wf = self._bw(result, "write", 19)
        nwf = self._bw(result, "write", 24)
        assert wf > nwf

    def test_large_chunks_beat_small_chunks(self, result):
        big = self._bw(result, "write", 18)  # M_PART, type 2
        small = self._bw(result, "write", 21)  # 1 kB, type 2
        assert big > small


class TestAnalysisHelpers:
    def test_method_value_double_weights_scatter(self):
        results = [
            TypeResult("write", 0, 600, 1.0, 1),
            TypeResult("write", 1, 300, 1.0, 1),
            TypeResult("write", 2, 300, 1.0, 1),
        ]
        # (2*600 + 300 + 300) / 4 = 450
        assert method_value(results) == pytest.approx(450.0)

    def test_method_value_rejects_mixed(self):
        results = [
            TypeResult("write", 0, 1, 1.0, 1),
            TypeResult("read", 1, 1, 1.0, 1),
        ]
        with pytest.raises(ValueError):
            method_value(results)

    def test_partition_value_weighting(self):
        values = {"write": 100.0, "rewrite": 100.0, "read": 200.0}
        assert partition_value(values) == pytest.approx(150.0)

    def test_partition_value_missing_method(self):
        with pytest.raises(ValueError):
            partition_value({"write": 1.0})

    def test_system_value_max(self):
        assert system_value({8: 10.0, 32: 30.0, 64: 20.0}) == 30.0

    def test_system_value_minimum_T(self):
        vals = {8: 10.0, 32: 30.0}
        Ts = {8: 900.0, 32: 600.0}
        assert system_value(vals, minimum_T=900.0, Ts=Ts) == 10.0
        with pytest.raises(ValueError):
            system_value(vals, minimum_T=1200.0, Ts=Ts)
        with pytest.raises(ValueError):
            system_value(vals, minimum_T=900.0)

    def test_pattern_time(self):
        assert pattern_time(900.0, 4, 64) == pytest.approx(18.75)
        with pytest.raises(ValueError):
            pattern_time(0.0, 4, 64)


class TestSegments:
    def test_chunk_repetitions_scales_scatter(self):
        from repro.beffio.benchmark import PatternRun

        runs = [
            PatternRun("write", 5, 0, KB, MB, True, reps=3, nbytes=0, time=1.0),
            PatternRun("write", 21, 2, KB, KB, True, reps=100, nbytes=0, time=1.0),
        ]
        factors = chunk_repetitions(runs)
        # type 0: 3 reps x 1024 chunks/call = 3072 > 100
        assert factors[KB] == 3072.0

    def test_estimate_rounded_to_mb(self):
        pats = [p for p in build_patterns(MEM) if p.pattern_type == 3 and not p.fill_segment]
        seg = estimate_segment_size([], pats, fallback_reps=4.0)
        assert seg % MB == 0
        assert seg >= MB

    def test_max_segment_cap(self):
        pats = [p for p in build_patterns(MEM) if p.pattern_type == 3 and not p.fill_segment]
        seg = estimate_segment_size([], pats, fallback_reps=1000.0, max_segment=8 * MB)
        assert seg <= 8 * MB
