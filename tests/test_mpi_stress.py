"""Property-based stress tests for the simulated MPI.

Random communication schedules must never deadlock (as long as sends
and receives match), must conserve messages, and must be
deterministic.  This is the kind of soak testing the matching engine
and the fluid network need before the benchmarks can be trusted.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import ANY_SOURCE, World
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import MB


def make_world(nprocs):
    sim = Simulator()
    fabric = Fabric(
        sim, Torus((nprocs,), link_bw=200 * MB),
        NetParams(latency=2e-6, eager_threshold=4096),
    )
    return World(fabric)


# A schedule: for each rank, a list of (dst, nbytes) sends.
schedules = st.integers(2, 6).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(0, n - 1),  # src
                st.integers(0, n - 1),  # dst
                st.integers(0, 100_000),  # nbytes (spans eager/rendezvous)
            ),
            max_size=25,
        ),
    )
)


class TestRandomSchedules:
    @settings(max_examples=60, deadline=None)
    @given(schedules)
    def test_matched_traffic_completes_and_conserves(self, spec):
        n, msgs = spec
        world = make_world(n)
        sends = {r: [] for r in range(n)}
        recv_counts = {r: 0 for r in range(n)}
        for src, dst, nbytes in msgs:
            sends[src].append((dst, nbytes))
            recv_counts[dst] += 1
        received = []

        def program(comm):
            reqs = [comm.isend(dst, nb, tag=0) for dst, nb in sends[comm.rank]]
            for _ in range(recv_counts[comm.rank]):
                status = yield from comm.recv(ANY_SOURCE, tag=0)
                received.append((status.source, comm.rank, status.nbytes))
            yield from comm.waitall(reqs)

        world.run(program)
        # every message arrived exactly once with its size intact
        expected = sorted((src, dst, nb) for src, dst, nb in msgs)
        assert sorted(received) == expected

    @settings(max_examples=20, deadline=None)
    @given(schedules)
    def test_schedules_are_deterministic(self, spec):
        n, msgs = spec

        def run():
            world = make_world(n)
            sends = {r: [] for r in range(n)}
            recv_counts = {r: 0 for r in range(n)}
            for src, dst, nbytes in msgs:
                sends[src].append((dst, nbytes))
                recv_counts[dst] += 1
            trace = []

            def program(comm):
                reqs = [comm.isend(dst, nb, tag=0) for dst, nb in sends[comm.rank]]
                for _ in range(recv_counts[comm.rank]):
                    status = yield from comm.recv(ANY_SOURCE, tag=0)
                    trace.append((comm.rank, status.source, comm.wtime()))
                yield from comm.waitall(reqs)

            world.run(program)
            return trace

        assert run() == run()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(1, 5))
    def test_collective_storm(self, nprocs, rounds):
        # interleaved collectives of all kinds never deadlock and
        # produce consistent values
        world = make_world(nprocs)
        outputs = {}

        def program(comm):
            acc = comm.rank
            for r in range(rounds):
                yield from comm.barrier()
                acc = yield from comm.allreduce(8, acc, max)
                data = yield from comm.bcast(root=r % comm.size, nbytes=64,
                                             data=acc if comm.rank == r % comm.size else None)
                gathered = yield from comm.gather(root=0, nbytes=8, value=data)
                if comm.rank == 0:
                    assert len(set(gathered)) == 1
            outputs[comm.rank] = acc

        world.run(program)
        assert set(outputs.values()) == {nprocs - 1}


class TestFlowNetworkSoak:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 8),
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(1, 10 * MB)),
            min_size=1,
            max_size=30,
        ),
    )
    def test_all_transfers_complete(self, nprocs, transfers):
        sim = Simulator()
        fabric = Fabric(sim, Torus((nprocs,), link_bw=100 * MB), NetParams())
        done = []
        from repro.sim import Process

        def prog(src, dst, nb):
            yield fabric.transfer_event(src % nprocs, dst % nprocs, nb)
            done.append(nb)

        for src, dst, nb in transfers:
            Process(sim, prog(src, dst, nb))
        sim.run_to_completion()
        assert sorted(done) == sorted(nb for _s, _d, nb in transfers)
        assert fabric.flows.active_flows == 0
