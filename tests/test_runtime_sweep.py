"""The benchmark-agnostic sweep orchestrator and run specifications.

b_eff_io's journal/resume/retry contract is pinned in
``test_sweep_resume.py``; this module pins the same contract for the
b_eff side of the unified runtime (journaling, kill+resume
bit-identity, parallel==serial) plus the runtime-only surfaces:
:class:`RunSpec` validation and fingerprints, and the resume-safety
rule that a journal started under one engine mode or fault seed
rejects a resume under another.
"""

import json
import math

import pytest

from repro.beff.measurement import MeasurementConfig
from repro.beff.sweep import BeffSweepResult, run_sweep as run_beff_sweep
from repro.beffio.benchmark import BeffIOConfig
from repro.beffio.sweep import run_sweep as run_beffio_sweep
from repro.faults import FaultPlan
from repro.runtime import (
    JournalMismatchError,
    RunSpec,
    SweepJournal,
    adapter_for,
    envelope_for,
    run_spec,
    sweep_fingerprint,
)
from repro.runtime.sweep import CRASH_AFTER_ENV

CFG = MeasurementConfig(backend="analytic")
PARTS = [2, 4]


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted b_eff sweep the resume tests compare against."""
    return run_beff_sweep("t3e", PARTS, CFG)


class TestBeffSweep:
    def test_sweep_reports_best_partition(self, baseline):
        assert isinstance(baseline, BeffSweepResult)
        assert sorted(baseline.partition_values()) == PARTS
        assert baseline.best_partition in PARTS
        assert baseline.best_b_eff == max(baseline.partition_values().values())

    def test_journal_records_every_partition(self, tmp_path, baseline):
        jdir = tmp_path / "journal"
        sweep = run_beff_sweep("t3e", PARTS, CFG, journal=jdir)
        assert sweep.partition_values() == baseline.partition_values()
        names = sorted(p.name for p in jdir.glob("partition_*.json"))
        assert names == ["partition_2.json", "partition_4.json"]
        # journal records are full envelopes (schema + provenance)
        payload = json.loads((jdir / "partition_2.json").read_text())
        assert payload["benchmark"] == "b_eff"
        assert payload["provenance"]["engine_mode"] == "analytic"

    def test_crash_then_resume_is_bit_identical(self, tmp_path, monkeypatch, baseline):
        jdir = tmp_path / "journal"
        monkeypatch.setenv(CRASH_AFTER_ENV, "1")
        with pytest.raises(RuntimeError, match="injected sweep crash"):
            run_beff_sweep("t3e", PARTS, CFG, journal=jdir)
        assert sorted(p.name for p in jdir.glob("partition_*.json")) == [
            "partition_2.json"
        ]
        assert list(jdir.glob("*.tmp")) == []
        monkeypatch.delenv(CRASH_AFTER_ENV)
        resumed = run_beff_sweep("t3e", PARTS, CFG, journal=jdir, resume=True)
        assert resumed.partition_values() == baseline.partition_values()
        assert resumed.best_b_eff == baseline.best_b_eff
        assert resumed.best_partition == baseline.best_partition

    def test_parallel_matches_serial_bit_exactly(self, baseline):
        parallel = run_beff_sweep("t3e", PARTS, CFG, jobs=2)
        assert parallel.partition_values() == baseline.partition_values()
        assert parallel.best_b_eff == baseline.best_b_eff

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="journal"):
            run_beff_sweep("t3e", PARTS, CFG, resume=True)


class TestResumeSafety:
    """A journal pins engine mode and fault seed; resume must match."""

    def start_journal(self, tmp_path, benchmark, config):
        jdir = tmp_path / "journal"
        SweepJournal(jdir).start("t3e", sweep_fingerprint(benchmark, "t3e", config))
        return jdir

    def test_beff_resume_rejects_changed_backend(self, tmp_path):
        jdir = self.start_journal(tmp_path, "b_eff", MeasurementConfig(backend="des"))
        with pytest.raises(JournalMismatchError, match="different sweep"):
            run_beff_sweep(
                "t3e", PARTS, MeasurementConfig(backend="analytic"),
                journal=jdir, resume=True,
            )

    def test_beff_resume_rejects_changed_fault_seed(self, tmp_path):
        planned = MeasurementConfig(backend="des", faults=FaultPlan(seed=7))
        jdir = self.start_journal(tmp_path, "b_eff", planned)
        reseeded = MeasurementConfig(backend="des", faults=FaultPlan(seed=8))
        with pytest.raises(JournalMismatchError, match="different sweep"):
            run_beff_sweep("t3e", PARTS, reseeded, journal=jdir, resume=True)

    def test_beffio_resume_rejects_changed_mode(self, tmp_path):
        planned = BeffIOConfig(T=0.8, pattern_types=(0,), mode="fast")
        jdir = self.start_journal(tmp_path, "b_eff_io", planned)
        reference = BeffIOConfig(T=0.8, pattern_types=(0,), mode="reference")
        with pytest.raises(JournalMismatchError, match="different sweep"):
            run_beffio_sweep("t3e", PARTS, reference, journal=jdir, resume=True)

    def test_beffio_resume_rejects_changed_fault_seed(self, tmp_path):
        planned = BeffIOConfig(T=0.8, pattern_types=(0,), faults=FaultPlan(seed=1))
        jdir = self.start_journal(tmp_path, "b_eff_io", planned)
        reseeded = BeffIOConfig(T=0.8, pattern_types=(0,), faults=FaultPlan(seed=2))
        with pytest.raises(JournalMismatchError, match="different sweep"):
            run_beffio_sweep("t3e", PARTS, reseeded, journal=jdir, resume=True)

    def test_beff_and_beffio_journals_never_collide(self, tmp_path):
        # the benchmark name is part of the fingerprint, so a b_eff
        # resume can never replay b_eff_io partitions
        beff = sweep_fingerprint("b_eff", "t3e", CFG)
        beffio = sweep_fingerprint(
            "b_eff_io", "t3e", BeffIOConfig(T=0.8, pattern_types=(0,))
        )
        assert beff != beffio


class TestFingerprint:
    def test_engine_mode_and_fault_seed_are_explicit(self):
        base = sweep_fingerprint("b_eff", "t3e", MeasurementConfig(backend="des"))
        assert sweep_fingerprint(
            "b_eff", "t3e", MeasurementConfig(backend="analytic")
        ) != base
        assert sweep_fingerprint(
            "b_eff", "t3e", MeasurementConfig(backend="des", faults=FaultPlan(seed=3))
        ) != base

    def test_stable_for_equal_configs(self):
        assert sweep_fingerprint("b_eff", "t3e", CFG) == sweep_fingerprint(
            "b_eff", "t3e", MeasurementConfig(backend="analytic")
        )


class TestRunSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_spec("b_wrong", "t3e", 4)
        with pytest.raises(ValueError, match="nprocs"):
            run_spec("b_eff", "t3e", 0)
        with pytest.raises(TypeError, match="MeasurementConfig"):
            RunSpec(
                benchmark="b_eff", machine="t3e", nprocs=4,
                config=BeffIOConfig(T=0.8),
            )

    def test_defaults_and_derived_fields(self):
        spec = run_spec("b_eff_io", "sp", 4)
        assert isinstance(spec.config, BeffIOConfig)
        assert spec.engine_mode == "fast"
        assert spec.fault_seed is None

    def test_fingerprint_covers_nprocs(self):
        a = run_spec("b_eff", "t3e", 2, CFG)
        b = run_spec("b_eff", "t3e", 4, CFG)
        assert a.fingerprint() != b.fingerprint()

    def test_run_and_envelope_agree(self):
        spec = run_spec("b_eff", "t3e", 2, CFG)
        result = spec.run()
        env = spec.envelope()
        assert env.benchmark == "b_eff"
        assert env.provenance["machine"] == "t3e"
        assert env.values["b_eff"] == result.b_eff
        assert env.to_dict() == envelope_for(result, machine="t3e").to_dict()


class TestAdapters:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            adapter_for("b_wrong")

    def test_official_rules(self):
        assert adapter_for("b_eff").official_of(CFG)
        assert not adapter_for("b_eff_io").official_of(BeffIOConfig(T=0.8))
        assert adapter_for("b_eff_io").official_of(BeffIOConfig(T=900.0))

    def test_value_extraction(self, baseline):
        result = baseline.results[0]
        assert adapter_for("b_eff").value_of(result) == result.b_eff
        assert not math.isnan(result.b_eff)
