"""Cross-layer integration tests: MPI + MPI-IO + filesystem together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import World
from repro.mpiio import IOFile, StridedView
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.sim import Simulator
from repro.topology import ClusteredSMP, Torus
from repro.util import KB, MB


def make_env(nprocs=4, **fs_over):
    sim = Simulator()
    fabric = Fabric(
        sim, Torus((nprocs,), link_bw=500 * MB), NetParams(latency=5e-6)
    )
    world = World(fabric)
    cfg = dict(
        num_servers=2,
        stripe_unit=64 * KB,
        disk_bw=50 * MB,
        ingest_bw=500 * MB,
        seek_time=3e-3,
        request_overhead=1e-4,
        disk_block=4 * KB,
        cache_bytes=64 * MB,
        client_bw=100 * MB,
        server_net_bw=100 * MB,
        call_overhead=5e-5,
    )
    cfg.update(fs_over)
    return world, FileSystem(sim, PFSConfig(**cfg))


class TestComputeAndIOInterleaved:
    def test_halo_exchange_plus_checkpoint(self):
        """A mini application: compute steps with halo exchanges, then a
        collective checkpoint write — the workload b_eff_io's intro
        motivates."""
        world, fs = make_env(4)
        f = IOFile(world.comm_world, fs, "checkpoint", sync_drains=True)
        finished = []

        def program(comm):
            n = comm.size
            for _step in range(3):
                left, right = (comm.rank - 1) % n, (comm.rank + 1) % n
                yield from comm.sendrecv(right, 64 * KB, left)
                yield from comm.sendrecv(left, 64 * KB, right)
            f.seek(comm.rank, comm.rank * MB)
            yield from f.write_all(comm.rank, MB)
            yield from f.sync(comm.rank)
            finished.append(comm.rank)

        world.run(program)
        assert sorted(finished) == [0, 1, 2, 3]
        assert f.pfsfile.size == 4 * MB
        assert fs.total_dirty == 0  # sync_drains=True waits for writeback

    def test_io_and_messages_share_virtual_time(self):
        # A rank doing I/O and a rank doing communication advance the
        # same clock; the barrier at the end aligns them.
        world, fs = make_env(2)
        f = IOFile(world.comm_world.create([0]), fs, "solo")
        times = {}

        def program2(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(1, tag=3) for _ in range(5)]
                yield from f.write(0, 8 * MB)
                yield from comm.waitall(reqs)
            else:
                for _ in range(5):
                    yield from comm.send(0, 1024, tag=3)
            yield from comm.barrier()
            times[comm.rank] = comm.wtime()

        world.run(program2)
        assert times[0] == pytest.approx(times[1])


class TestStridedRoundtrip:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.sampled_from([KB, 4 * KB, 64 * KB]))
    def test_interleaved_write_then_read_hits_cache(self, reps, chunk):
        world, fs = make_env(2)
        f = IOFile(world.comm_world, fs, "strided")
        for r in range(2):
            f.set_view(r, StridedView(r * chunk, chunk, 2 * chunk))

        def program(comm):
            total = 0
            for _ in range(reps):
                total += yield from f.write_all(comm.rank, chunk)
            f.seek(comm.rank, 0)
            for _ in range(reps):
                total += yield from f.read_all(comm.rank, chunk)
            return total

        results = world.run(program)
        assert results[0] == results[1] == 2 * reps * chunk * 2
        # the read phase found everything in cache
        assert fs.bytes_from_disk == 0


class TestClusterIOPlacement:
    def test_io_from_smp_cluster(self):
        # MPI-IO works when the compute fabric is a clustered SMP and
        # the two-phase exchange crosses memory buses and NICs.
        sim = Simulator()
        topo = ClusteredSMP(2, 2, membus_bw=2_000 * MB, nic_bw=200 * MB)
        fabric = Fabric(sim, topo, NetParams(latency=10e-6, copy_bw=1_000 * MB))
        world = World(fabric)
        fs = FileSystem(sim, PFSConfig(
            num_servers=2, stripe_unit=64 * KB, disk_bw=50 * MB,
            ingest_bw=400 * MB, seek_time=3e-3, request_overhead=1e-4,
            disk_block=4 * KB, cache_bytes=32 * MB, client_bw=80 * MB,
            server_net_bw=80 * MB, call_overhead=5e-5,
        ))
        f = IOFile(world.comm_world, fs, "cluster-file")

        def program(comm):
            f.seek(comm.rank, comm.rank * MB)
            total = yield from f.write_all(comm.rank, MB)
            return total

        results = world.run(program)
        assert results == [4 * MB] * 4


class TestDeterminismAcrossLayers:
    def test_full_stack_repeatable(self):
        def run():
            world, fs = make_env(3)
            f = IOFile(world.comm_world, fs, "det")
            trace = []

            def program(comm):
                yield from comm.barrier()
                yield from f.write_shared(comm.rank, 100 * KB)
                yield from comm.barrier()
                trace.append((comm.rank, comm.wtime()))

            world.run(program)
            return trace

        assert run() == run()
