"""The whole-program engine against the planted fixture package.

``tests/data/lintpkg`` is a small package built so that every
interprocedural rule has exactly one intended witness: a wall-clock
read that crosses three modules before reaching ``write_json_atomic``,
a set-order leak into an envelope, an unseeded RNG feeding a
fingerprint, both flavours of the blessed-source escape, and one
violation of each REPRO016 concurrency discipline under its
``runtime/`` subpackage.  On top of the detection tests, this file
pins the engine's two operational invariants: reports are
byte-identical across serial, parallel and warm-cache runs, and an
edit re-analyzes exactly the edited file plus its reverse-dependency
cone.
"""

import json
import pathlib
import shutil

from hypothesis import given, settings, strategies as st

from repro.devtools.lint import RULES, main, run_engine
from repro.devtools.sarif import render_sarif

FIXTURE = pathlib.Path(__file__).parent / "data" / "lintpkg"


def _findings(report):
    return {(v.rule, v.path.rsplit("lintpkg/", 1)[-1], v.line)
            for v in report.violations}


class TestPlantedFlows:
    def test_cross_module_chain_reaches_the_sink(self):
        report = run_engine([FIXTURE])
        found = _findings(report)
        assert ("REPRO015", "runtime/writer.py", 9) in found
        flush = [v for v in report.violations
                 if v.rule == "REPRO015" and v.path.endswith("writer.py")]
        assert len(flush) == 1
        # the witness names the true origin, two modules away
        assert "wall-clock source" in flush[0].message
        assert "clock.py:7" in flush[0].message

    def test_set_order_and_unseeded_rng_flows(self):
        found = _findings(run_engine([FIXTURE]))
        assert ("REPRO015", "collect.py", 10) in found
        assert ("REPRO015", "spec.py", 9) in found

    def test_blessing_with_seed_launders_without_seed_fails(self):
        report = run_engine([FIXTURE])
        found = _findings(report)
        # the seedless directive is itself the finding ...
        assert ("REPRO015", "blessed.py", 12) in found
        # ... while the seeded one cleans the whole downstream flow:
        # flush_blessed (writer.py:13) must not appear
        assert not any(
            v.rule == "REPRO015" and v.path.endswith("writer.py")
            and v.line != 9
            for v in report.violations
        )

    def test_concurrency_disciplines(self):
        report = run_engine([FIXTURE])
        sixteen = {(v.path.rsplit("lintpkg/", 1)[-1], v.line)
                   for v in report.violations if v.rule == "REPRO016"}
        assert sixteen == {
            ("runtime/state.py", 16),   # reset() mutates outside the lock
            ("runtime/locks.py", 13),   # peek() opens .lock without flock
            ("runtime/comm.py", 5),     # publish() sends outside a lock
        }

    def test_findings_carry_v2_fingerprints(self):
        report = run_engine([FIXTURE])
        for v in report.violations:
            if v.rule in ("REPRO015", "REPRO016"):
                assert v.qualname.startswith("lintpkg.")
                assert v.stmt == "" or len(v.stmt) == 16


class TestReportDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(jobs=st.integers(min_value=2, max_value=4))
    def test_parallel_report_is_byte_identical_to_serial(self, jobs):
        serial = run_engine([FIXTURE], jobs=1)
        parallel = run_engine([FIXTURE], jobs=jobs)
        assert render_sarif(serial.violations, RULES, "test") == (
            render_sarif(parallel.violations, RULES, "test")
        )

    def test_warm_cache_report_is_byte_identical(self, tmp_path):
        cold = run_engine([FIXTURE], cache_dir=tmp_path / "cache")
        warm = run_engine([FIXTURE], cache_dir=tmp_path / "cache")
        assert warm.stats["reanalyzed"] == []
        assert warm.stats["cache_hits"] == cold.stats["files"]
        assert render_sarif(cold.violations, RULES, "test") == (
            render_sarif(warm.violations, RULES, "test")
        )

    def test_sarif_has_no_timestamps_or_absolute_paths(self):
        # analyzed as the repo sees it: a relative path from the root
        report = run_engine(["tests/data/lintpkg"])
        text = render_sarif(report.violations, RULES, "test")
        doc = json.loads(text)
        assert doc["version"] == "2.1.0"
        assert "invocations" not in doc["runs"][0]
        assert str(FIXTURE) not in text  # URIs stay relative


class TestIncrementalCache:
    def _copy(self, tmp_path):
        tree = tmp_path / "lintpkg"
        shutil.copytree(FIXTURE, tree)
        return tree

    def test_edit_reanalyzes_exactly_the_cone(self, tmp_path):
        tree = self._copy(tmp_path)
        cache = tmp_path / "cache"
        cold = run_engine([tree], cache_dir=cache)
        assert len(cold.stats["reanalyzed"]) == cold.stats["files"] == 11

        # an untouched second run replays everything from cache
        warm = run_engine([tree], cache_dir=cache)
        assert warm.stats["reanalyzed"] == []

        # touch mixer.py: itself plus its one importer (runtime/writer
        # resolves `payload` through it) re-analyze — nothing else
        mixer = tree / "mixer.py"
        mixer.write_text(mixer.read_text() + "\n# cache-buster\n")
        edited = run_engine([tree], cache_dir=cache)
        assert [p.rsplit("lintpkg/", 1)[-1]
                for p in edited.stats["reanalyzed"]] == [
            "mixer.py", "runtime/writer.py"
        ]
        # and the report is still the full, unchanged truth
        assert {(v.rule, v.line) for v in edited.violations} == (
            {(v.rule, v.line) for v in cold.violations}
        )

    def test_leaf_edit_reanalyzes_only_itself(self, tmp_path):
        tree = self._copy(tmp_path)
        cache = tmp_path / "cache"
        run_engine([tree], cache_dir=cache)
        comm = tree / "runtime" / "comm.py"
        comm.write_text(comm.read_text() + "\n# cache-buster\n")
        edited = run_engine([tree], cache_dir=cache)
        assert [p.rsplit("lintpkg/", 1)[-1]
                for p in edited.stats["reanalyzed"]] == ["runtime/comm.py"]

    def test_stats_json_cli_surface(self, tmp_path, capsys):
        tree = self._copy(tmp_path)
        stats_file = tmp_path / "stats.json"
        code = main([
            str(tree), "--cache-dir", str(tmp_path / "cache"),
            "--stats-json", str(stats_file),
        ])
        assert code == 1  # the fixture is (deliberately) dirty
        capsys.readouterr()
        stats = json.loads(stats_file.read_text())
        assert stats["files"] == 11
        assert len(stats["reanalyzed"]) == 11
        assert stats["cache_misses"] == 11
