"""Golden-file round trips for export envelopes.

Satellite contract of the unified runtime: serializing a result,
loading it back, and serializing again must produce *byte-identical*
JSON — the property the sweep journal's bit-identical resume and any
archived golden file rest on.  A payload written under a different
schema version must be refused with a clear error, never silently
reinterpreted.
"""

import json

import pytest

from repro.beff.measurement import MeasurementConfig
from repro.beffio.benchmark import BeffIOConfig
from repro.machines import MACHINES
from repro.reporting.export import (
    SCHEMA_VERSION,
    SchemaVersionError,
    beff_from_dict,
    beff_to_dict,
    beffio_from_dict,
    beffio_to_dict,
    to_json,
    write_json_atomic,
)
from repro.runtime.envelope import ENVELOPE_SCHEMA, ResultEnvelope, envelope_for


@pytest.fixture(scope="module")
def beff_result():
    return MACHINES["t3e"]().run_beff(2, MeasurementConfig(backend="analytic"))


@pytest.fixture(scope="module")
def beffio_result():
    return MACHINES["sp"]().run_beffio(2, BeffIOConfig(T=0.8, pattern_types=(0, 2)))


class TestRoundTrip:
    def test_beff_reexport_is_byte_identical(self, beff_result, tmp_path):
        first = to_json(beff_result, machine="t3e")
        path = tmp_path / "beff.json"
        write_json_atomic(path, first)
        loaded = beff_from_dict(json.loads(path.read_text()))
        second = to_json(loaded, machine="t3e")
        assert second == first

    def test_beffio_reexport_is_byte_identical(self, beffio_result, tmp_path):
        first = to_json(beffio_result, machine="sp")
        path = tmp_path / "beffio.json"
        write_json_atomic(path, first)
        loaded = beffio_from_dict(json.loads(path.read_text()))
        second = to_json(loaded, machine="sp")
        assert second == first

    def test_rebuilt_results_carry_provenance_fields(self, beffio_result):
        d = beffio_to_dict(beffio_result, machine="sp")
        loaded = beffio_from_dict(d)
        assert loaded.engine_mode == beffio_result.engine_mode
        assert loaded.fault_seed == beffio_result.fault_seed
        assert loaded.b_eff_io == beffio_result.b_eff_io

    def test_envelope_dict_round_trip(self, beff_result):
        env = envelope_for(beff_result, machine="t3e")
        back = ResultEnvelope.from_dict(env.to_dict())
        assert back.to_dict() == env.to_dict()

    def test_cross_benchmark_payloads_rejected(self, beff_result, beffio_result):
        with pytest.raises(ValueError, match="not b_eff_io"):
            beffio_from_dict(beff_to_dict(beff_result, machine="t3e"))
        with pytest.raises(ValueError, match="not b_eff"):
            beff_from_dict(beffio_to_dict(beffio_result, machine="sp"))


class TestSchemaVersion:
    def test_export_and_envelope_schemas_agree(self, beff_result):
        assert SCHEMA_VERSION == ENVELOPE_SCHEMA
        assert beff_to_dict(beff_result)["schema"] == SCHEMA_VERSION

    @pytest.mark.parametrize("stale", [1, 2, SCHEMA_VERSION + 1, None, "3"])
    def test_mismatched_schema_raises_clear_error(self, beff_result, stale):
        d = beff_to_dict(beff_result, machine="t3e")
        d["schema"] = stale
        with pytest.raises(SchemaVersionError) as exc_info:
            beff_from_dict(d)
        message = str(exc_info.value)
        assert repr(stale) in message
        assert f"reads schema {SCHEMA_VERSION}" in message
        assert exc_info.value.found == stale
        assert exc_info.value.expected == SCHEMA_VERSION

    def test_schema_error_is_a_value_error(self):
        # callers catching the legacy ValueError keep working
        assert issubclass(SchemaVersionError, ValueError)
