"""Unit tests for the declarative reduction-tree layer.

The runtime spine expresses both benchmark formulas as data
(:mod:`repro.runtime.formulas`) folded by a generic evaluator
(:mod:`repro.runtime.reduce`).  These tests pin the evaluator's
contracts directly: primitive reducer semantics, structural
validation, fold order (bit-identity with hand-rolled loops), and the
partial-evaluation policies the resilient paths rely on.
"""

import math

import pytest

from repro.runtime.formulas import (
    ACCESS_METHODS,
    METHOD_WEIGHTS,
    beff_formula,
    beffio_formula,
    system_formula,
)
from repro.runtime.reduce import (
    Formula,
    Reduce,
    arith_mean,
    evaluate,
    evaluate_partial,
    log_avg,
    max_over,
    weighted_avg,
)
from repro.util import logavg, weighted_average


# -- primitive reducers -------------------------------------------------


def test_max_over_basic_and_empty():
    assert max_over([1.0, 3.0, 2.0]) == 3.0
    with pytest.raises(ValueError, match="empty"):
        max_over([])


def test_max_over_nan_handling():
    # by default a NaN propagates through max() order-dependently;
    # ignore_nan drops them, and an all-NaN group collapses to NaN
    assert max_over([1.0, math.nan, 2.0], ignore_nan=True) == 2.0
    assert math.isnan(max_over([math.nan, math.nan], ignore_nan=True))
    with pytest.raises(ValueError, match="empty"):
        max_over([], ignore_nan=True)


def test_arith_mean_count_pins_length_and_divisor():
    assert arith_mean([2.0, 4.0]) == 3.0
    assert arith_mean([2.0, 4.0, 6.0], count=3) == 4.0
    with pytest.raises(ValueError, match="have 2 values, expected 3"):
        arith_mean([2.0, 4.0], count=3)
    with pytest.raises(ValueError, match="empty"):
        arith_mean([])


def test_log_avg_and_weighted_avg_delegate_to_util():
    vals = [100.0, 400.0]
    assert log_avg(vals) == logavg(vals)
    weights = [1.0, 3.0]
    assert weighted_avg(vals, weights) == weighted_average(vals, weights)


# -- Reduce / Formula validation ----------------------------------------


def test_reduce_rejects_unknown_op_and_policy():
    with pytest.raises(ValueError, match="unknown reduction op"):
        Reduce(op="median", over="x")
    with pytest.raises(ValueError, match="unknown partial policy"):
        Reduce(op="max", over="x", partial="sometimes")


def test_reduce_weight_of_defaults():
    step = Reduce(op="weighted", over="type", weights={0: 2.0}, default_weight=1.0)
    assert step.weight_of(0) == 2.0
    assert step.weight_of(3) == 1.0


def test_formula_validation_and_introspection():
    with pytest.raises(ValueError, match="at least one"):
        Formula(name="empty", steps=())
    with pytest.raises(ValueError, match="duplicate axis"):
        Formula(
            name="dup",
            steps=(Reduce(op="max", over="x"), Reduce(op="max", over="x")),
        )
    f = beff_formula(num_sizes=21)
    assert f.axes == ("kind", "pattern", "size", "method", "repetition")
    assert f.step_index("size") == 2
    with pytest.raises(KeyError, match="no axis"):
        f.step_index("bogus")


# -- evaluate: complete-run semantics -----------------------------------

TOY = Formula(
    name="toy",
    steps=(
        Reduce(op="logavg", over="kind", require=("ring", "random")),
        Reduce(op="max", over="rep"),
    ),
)


def toy_leaves():
    return [
        (("ring", 0), 100.0),
        (("ring", 1), 120.0),
        (("random", 0), 50.0),
        (("random", 1), 40.0),
    ]


def test_evaluate_folds_and_exposes_tables():
    ev = evaluate(TOY, toy_leaves())
    assert ev.table("rep") == {("ring",): 120.0, ("random",): 50.0}
    assert ev.value == logavg([120.0, 50.0])
    assert ev.missing == ()


def test_evaluate_require_reorders_to_canonical_order():
    # leaves arriving random-first still fold ring-then-random
    ev = evaluate(TOY, list(reversed(toy_leaves())))
    assert ev.value == logavg([120.0, 50.0])


def test_evaluate_require_missing_child_raises():
    with pytest.raises(ValueError, match="missing required children"):
        evaluate(TOY, [(("ring", 0), 100.0)])


def test_evaluate_rejects_malformed_input():
    with pytest.raises(ValueError, match="no leaves"):
        evaluate(TOY, [])
    with pytest.raises(ValueError, match="has 1 axes"):
        evaluate(TOY, [(("ring",), 1.0)])


def test_evaluate_mean_count_names_the_group():
    f = Formula(name="m", steps=(Reduce(op="mean", over="size", count=3),))
    with pytest.raises(ValueError, match="has 2 values, expected 3"):
        evaluate(f, [((0,), 1.0), ((1,), 2.0)])


def test_evaluate_matches_hand_rolled_beff_fold():
    # a miniature b_eff: 2 patterns per kind, 2 sizes, 2 methods, 1 rep
    f = beff_formula(num_sizes=2)
    leaves = []
    value = {}
    for kind in ("ring", "random"):
        for pattern in ("p1", "p2"):
            for size in (1, 2):
                for method in ("a", "b"):
                    v = float(
                        len(kind) * 10 + size * 3 + (2 if method == "b" else 0)
                    )
                    leaves.append(((kind, pattern, size, method, 0), v))
                    value[(kind, pattern, size, method)] = v
    per_pattern = {
        (kind, pat): sum(
            max(value[(kind, pat, s, m)] for m in ("a", "b")) for s in (1, 2)
        )
        / 2
        for kind in ("ring", "random")
        for pat in ("p1", "p2")
    }
    by_kind = {
        kind: logavg([per_pattern[(kind, "p1")], per_pattern[(kind, "p2")]])
        for kind in ("ring", "random")
    }
    expected = logavg([by_kind["ring"], by_kind["random"]])
    assert evaluate(f, leaves).value == expected


def test_beffio_formula_weights_match_the_paper():
    # scatter (type 0) double-weighted inside a method, read counts 50 %
    f = beffio_formula()
    assert f.steps[0].require == ACCESS_METHODS
    assert f.steps[0].weight_of("read") == METHOD_WEIGHTS["read"] == 2.0
    assert f.steps[1].weight_of(0) == 2.0
    assert f.steps[1].weight_of(3) == 1.0
    leaves = [
        (("write", 0), 10.0),
        (("write", 1), 20.0),
        (("rewrite", 0), 30.0),
        (("rewrite", 1), 40.0),
        (("read", 0), 50.0),
        (("read", 1), 60.0),
    ]
    per_method = {
        m: weighted_average([a, b], [2.0, 1.0])
        for m, a, b in (("write", 10.0, 20.0), ("rewrite", 30.0, 40.0), ("read", 50.0, 60.0))
    }
    expected = weighted_average(
        [per_method["write"], per_method["rewrite"], per_method["read"]],
        [1.0, 1.0, 2.0],
    )
    assert evaluate(f, leaves).value == expected


def test_system_formula_ignores_nan_partitions():
    ev = evaluate(system_formula(), [((2,), 10.0), ((4,), 30.0)])
    assert ev.value == 30.0


# -- evaluate_partial: degraded-run semantics ---------------------------


def test_partial_complete_input_matches_evaluate():
    expected = [("ring",), ("random",)]
    full = evaluate(TOY, toy_leaves())
    part = evaluate_partial(TOY, toy_leaves(), expected)
    assert part.value == full.value
    assert part.missing == ()
    assert part.components == {("ring",): 120.0, ("random",): 50.0}


def test_partial_missing_component_nans_value_keeps_survivors():
    expected = [("ring",), ("random",)]
    part = evaluate_partial(TOY, [(("ring", 0), 100.0)], expected)
    assert math.isnan(part.value)
    assert part.missing == (("random",),)
    assert part.components == {("ring",): 100.0}


def test_partial_drops_unscheduled_components():
    expected = [("ring",)]
    part = evaluate_partial(
        TOY, [(("ring", 0), 100.0), (("rogue", 0), 999.0)], expected
    )
    assert part.components == {("ring",): 100.0}


def test_partial_strict_step_nans_on_nan_child():
    f = Formula(
        name="strict",
        steps=(
            Reduce(op="weighted", over="method", require=("a", "b")),
            Reduce(op="mean", over="size", count=2),
        ),
    )
    expected = [("a",), ("b",)]
    # method "b" measured only one of two sizes: its mean is incomplete
    leaves = [(("a", 0), 1.0), (("a", 1), 3.0), (("b", 0), 5.0)]
    part = evaluate_partial(f, leaves, expected)
    assert math.isnan(part.value)
    assert part.missing == (("b",),)
    assert part.components == {("a",): 2.0}


def test_partial_loose_step_reduces_survivors():
    f = Formula(
        name="loose",
        steps=(
            Reduce(op="logavg", over="kind", require=("ring", "random")),
            Reduce(op="logavg", over="pattern", partial="loose"),
            Reduce(op="max", over="rep"),
        ),
    )
    expected = [
        ("ring", "p1"), ("ring", "p2"), ("random", "p1"), ("random", "p2"),
    ]
    # ring-p2 never completed; the ring logavg covers the survivor only
    leaves = [
        (("ring", "p1", 0), 100.0),
        (("random", "p1", 0), 50.0),
        (("random", "p2", 0), 60.0),
    ]
    part = evaluate_partial(f, leaves, expected)
    assert math.isnan(part.value)  # a scheduled component is missing
    assert part.missing == (("ring", "p2"),)
    assert part.table("pattern")[("ring",)] == logavg([100.0])
    assert part.table("pattern")[("random",)] == logavg([50.0, 60.0])


def test_partial_validates_expected_keys():
    with pytest.raises(ValueError, match="at least one expected"):
        evaluate_partial(TOY, toy_leaves(), [])
    with pytest.raises(ValueError, match="differ in length"):
        evaluate_partial(TOY, toy_leaves(), [("ring",), ("random", 1)])
    with pytest.raises(ValueError, match="do not fit"):
        evaluate_partial(TOY, toy_leaves(), [("ring", 1, 2)])
