"""Tests for the I/O server service loop and disk model."""

import pytest

from repro.pfs.server import IORequest, IOServer, ServerParams
from repro.sim import Process, Simulator, Sleep
from repro.util import KB, MB


def make_server(**over):
    params = dict(
        disk_bw=100.0,  # tiny numbers for easy arithmetic
        ingest_bw=1000.0,
        seek_time=1.0,
        request_overhead=0.5,
        disk_block=10,
        cache_bytes=1000,
        drain_chunk=100,
    )
    params.update(over)
    sim = Simulator()
    return sim, IOServer(sim, ServerParams(**params))


def run_client(sim, gen):
    done = []

    def wrapper():
        result = yield from gen
        done.append((sim.now, result))

    Process(sim, wrapper())
    sim.run_to_completion()
    return done[0][0]


class TestValidation:
    def test_request_kinds(self):
        with pytest.raises(ValueError):
            IORequest("append", "f", ((0, 10),))
        with pytest.raises(ValueError):
            IORequest("write", "f", ((10, 0),))

    def test_params(self):
        with pytest.raises(ValueError):
            ServerParams(0, 1, 0, 0, 1, 0)
        with pytest.raises(ValueError):
            ServerParams(1, 1, -1, 0, 1, 0)
        with pytest.raises(ValueError):
            ServerParams(1, 1, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            ServerParams(1, 1, 0, 0, 1, -5)


class TestWriteService:
    def test_cached_write_at_ingest_speed(self):
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("write", "f", ((0, 100),)))

        t = run_client(sim, client())
        # overhead 0.5 + 100/1000 ingest = 0.6
        assert t == pytest.approx(0.6)

    def test_overflow_write_pays_disk_time(self):
        sim, server = make_server(cache_bytes=50)

        def client():
            yield server.submit(IORequest("write", "f", ((0, 100),)))

        t = run_client(sim, client())
        # 0.5 + 50/1000 cache + seek 1.0 + 50/100 disk = 2.05
        assert t == pytest.approx(2.05)

    def test_appending_misaligned_write_pays_no_rmw(self):
        # An initial (appending) write never needs the old block, no
        # matter how misaligned its edges are.
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("write", "f", ((3, 27),)))

        t = run_client(sim, client())
        # overhead 0.5 + 24 bytes at ingest 1000 = 0.524; no disk reads
        assert t == pytest.approx(0.524)
        assert server.bytes_from_disk == 0

    def test_misaligned_overwrite_pays_rmw(self):
        # Overwriting *existing* data with misaligned edges fetches the
        # containing blocks (unless cached).
        sim, server = make_server(cache_bytes=0)

        def client():
            yield server.submit(IORequest("write", "f", ((0, 100),)))
            # edges 23 and 57 cut into existing data; blocks uncached
            yield server.submit(IORequest("write", "f", ((23, 57),)))

        t = run_client(sim, client())
        # first: 0.5 + seek 1 + 100/100 = 2.5 (cache_bytes=0 -> disk)
        # second: 0.5 + rmw [20,30): seek+0.1, rmw [50,60): seek+0.1
        #         + overflow write 34 bytes: seek + 0.34
        assert t == pytest.approx(2.5 + 0.5 + 1.1 + 1.1 + 1.34)
        assert server.bytes_from_disk == 20

    def test_cached_block_avoids_rmw(self):
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("write", "f", ((0, 100),)))
            yield server.submit(IORequest("write", "f", ((23, 57),)))

        run_client(sim, client())
        # everything stayed in cache; overwrite needed no disk reads
        assert server.bytes_from_disk == 0

    def test_unaligned_penalty_applied_to_writes(self):
        sim, server = make_server(unaligned_penalty=2.0, sector=10)

        def client():
            yield server.submit(IORequest("write", "f", ((0, 100),)))   # aligned
            yield server.submit(IORequest("write", "f", ((103, 207),)))  # not

        t = run_client(sim, client())
        # aligned: 0.6; misaligned: 0.5 + 2.0 + 104/1000
        assert t == pytest.approx(0.6 + 2.604)

    def test_unaligned_penalty_halved_for_reads(self):
        sim, server = make_server(unaligned_penalty=2.0, sector=10, cache_bytes=0)

        def client():
            yield server.submit(IORequest("read", "f", ((3, 103),)))

        t = run_client(sim, client())
        # 0.5 + penalty/2 + seek 1 + 100/100
        assert t == pytest.approx(0.5 + 1.0 + 1.0 + 1.0)

    def test_unaligned_params_validated(self):
        with pytest.raises(ValueError):
            make_server(unaligned_penalty=-1.0)
        with pytest.raises(ValueError):
            make_server(sector=0)

    def test_aligned_write_has_no_rmw(self):
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("write", "f", ((0, 20),)))

        run_client(sim, client())
        assert server.bytes_from_disk == 0

    def test_fifo_ordering(self):
        sim, server = make_server()
        times = {}

        def client(tag, delay):
            yield Sleep(delay)
            yield server.submit(IORequest("write", "f", ((tag * 100, tag * 100 + 100),)))
            times[tag] = sim.now

        Process(sim, client(0, 0.0))
        Process(sim, client(1, 0.0))
        sim.run_to_completion()
        assert times[1] == pytest.approx(times[0] + 0.6)


class TestDrainAndSync:
    def test_idle_server_drains_dirty_bytes(self):
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("write", "f", ((0, 200),)))

        run_client(sim, client())
        assert server.bytes_to_disk == 200
        assert server.cache.dirty_total == 0

    def test_sync_waits_for_drain(self):
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("write", "f", ((0, 200),)))
            yield server.sync("f")

        t = run_client(sim, client())
        # service 0.5+0.2=0.7; then drain 2 chunks of 100:
        # chunk1 seek 1 + 1.0, chunk2 contiguous 1.0 -> done at 0.7+3.0=3.7
        assert t == pytest.approx(3.7)

    def test_sync_immediate_when_clean(self):
        sim, server = make_server()

        def client():
            yield server.sync("f")

        t = run_client(sim, client())
        assert t == pytest.approx(0.0)

    def test_sync_covers_queued_writes(self):
        # sync posted while a write request is still queued must wait.
        sim, server = make_server()
        t = {}

        def writer():
            yield server.submit(IORequest("write", "f", ((0, 100),)))
            t["write"] = sim.now

        def syncer():
            ev = server.sync("f")
            yield ev
            t["sync"] = sim.now

        Process(sim, writer())
        Process(sim, syncer())
        sim.run_to_completion()
        assert t["sync"] >= t["write"]
        assert server.cache.dirty_total == 0


class TestReadService:
    def test_cold_read_from_disk(self):
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("read", "f", ((0, 100),)))

        t = run_client(sim, client())
        # 0.5 + seek 1 + 100/100 = 2.5
        assert t == pytest.approx(2.5)
        assert server.bytes_from_disk == 100

    def test_cached_read_at_ingest_speed(self):
        sim, server = make_server()

        def client():
            yield server.submit(IORequest("write", "f", ((0, 100),)))
            yield server.submit(IORequest("read", "f", ((0, 100),)))

        t = run_client(sim, client())
        # write 0.6, read 0.5 + 100/1000 = 0.6 -> 1.2
        assert t == pytest.approx(1.2)
        assert server.bytes_from_disk == 0

    def test_sequential_reads_seek_once(self):
        sim, server = make_server(cache_bytes=0)

        def client():
            yield server.submit(IORequest("read", "f", ((0, 100),)))
            yield server.submit(IORequest("read", "f", ((100, 200),)))

        run_client(sim, client())
        assert server.seeks == 1

    def test_interleaved_files_seek_every_time(self):
        sim, server = make_server(cache_bytes=0)

        def client():
            yield server.submit(IORequest("read", "f", ((0, 100),)))
            yield server.submit(IORequest("read", "g", ((0, 100),)))
            yield server.submit(IORequest("read", "f", ((100, 200),)))

        run_client(sim, client())
        assert server.seeks == 3
