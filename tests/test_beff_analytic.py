"""Tests for the analytic round model and capped max-min allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.beff.analytic import RoundModel, _capped_maxmin
from repro.beff.patterns import CommPattern
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.sim.fluid import maxmin_allocate
from repro.topology import Crossbar, Torus
from repro.util import MB


class TestMaxminAllocate:
    def test_single_flow_full_capacity(self):
        assert maxmin_allocate({0: 10.0}, [(0,)]) == [10.0]

    def test_fair_split(self):
        rates = maxmin_allocate({0: 10.0}, [(0,), (0,)])
        assert rates == [5.0, 5.0]

    def test_empty_route_infinite(self):
        import math

        rates = maxmin_allocate({0: 10.0}, [()])
        assert math.isinf(rates[0])

    def test_classic_maxmin_example(self):
        # link0 cap 10 shared by A and C; link1 cap 4 shared by A and B
        # A: both links; B: link1; C: link0
        rates = maxmin_allocate({0: 10.0, 1: 4.0}, [(0, 1), (1,), (0,)])
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(2.0)
        assert rates[2] == pytest.approx(8.0)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 3), min_size=1, max_size=3, unique=True),
            min_size=1,
            max_size=10,
        )
    )
    def test_feasibility_and_pareto(self, routes):
        caps = {i: 10.0 + i for i in range(4)}
        rates = maxmin_allocate(caps, [tuple(r) for r in routes])
        # feasibility: no link oversubscribed
        for link, cap in caps.items():
            load = sum(rate for rate, route in zip(rates, routes) if link in route)
            assert load <= cap * (1 + 1e-9)
        # every flow has a saturated link (max-min property)
        for rate, route in zip(rates, routes):
            saturated = False
            for link in route:
                load = sum(r for r, rt in zip(rates, routes) if link in rt)
                if load >= caps[link] * (1 - 1e-9):
                    saturated = True
            assert saturated

    def test_capped_flow_releases_bandwidth(self):
        # two flows on a 10-link; one capped at 2 -> the other gets 8
        rates = _capped_maxmin({0: 10.0}, [(0,), (0,)], [2.0, None])
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_cap_above_share_inactive(self):
        rates = _capped_maxmin({0: 10.0}, [(0,), (0,)], [100.0, None])
        assert rates == [pytest.approx(5.0), pytest.approx(5.0)]


def make_model(topo, **params):
    sim = Simulator()
    fabric = Fabric(sim, topo, NetParams(**params))
    return RoundModel(fabric)


class TestRoundModel:
    def test_phase_time_single_message(self):
        model = make_model(Torus((2,), link_bw=100 * MB), latency=10e-6,
                           eager_threshold=1 << 30)
        t = model.phase_time([(0, 1, MB)])
        assert t == pytest.approx(10e-6 + MB / (100 * MB))

    def test_phase_time_empty(self):
        model = make_model(Torus((2,), link_bw=100 * MB))
        assert model.phase_time([]) == 0.0

    def test_zero_byte_messages_cost_latency(self):
        model = make_model(Torus((2,), link_bw=100 * MB), latency=5e-6)
        assert model.phase_time([(0, 1, 0)]) == pytest.approx(5e-6)

    def test_rendezvous_latency_added(self):
        model = make_model(
            Torus((2,), link_bw=100 * MB),
            latency=10e-6, eager_threshold=10, rendezvous_latency=7e-6,
        )
        t_small = model.phase_time([(0, 1, 10)])
        t_big = model.phase_time([(0, 1, 11)])
        assert t_big - t_small == pytest.approx(7e-6 + 1 / (100 * MB), rel=1e-6)

    def test_sendrecv_two_phases_vs_nonblocking(self):
        # ring of 4 on a torus: sendrecv serializes the two directions
        model = make_model(Torus((4,), link_bw=100 * MB), latency=0.0,
                           eager_threshold=1 << 30)
        pattern = CommPattern("r", "ring", ((0, 1, 2, 3),))
        t_sr = model.round_time(pattern, MB, "sendrecv")
        t_nb = model.round_time(pattern, MB, "nonblocking")
        # each phase runs at full link speed; nonblocking shares NICs
        assert t_sr == pytest.approx(2 * MB / (100 * MB))
        assert t_nb == pytest.approx(2 * MB / (100 * MB))

    def test_two_ring_parallel_sendrecv(self):
        model = make_model(Torus((2,), link_bw=100 * MB), latency=0.0,
                           eager_threshold=1 << 30)
        pattern = CommPattern("p", "ring", ((0, 1),))
        t = model.round_time(pattern, MB, "sendrecv")
        # both messages of the 2-ring go in parallel but share the tx NIC
        assert t == pytest.approx(2 * MB / (100 * MB))

    def test_alltoallv_pays_per_step_latency(self):
        model = make_model(Torus((8,), link_bw=1000 * MB), latency=50e-6)
        pattern = CommPattern(
            "r", "ring", (tuple(range(8)),)
        )
        t_a2a = model.round_time(pattern, 1024, "alltoallv")
        t_nb = model.round_time(pattern, 1024, "nonblocking")
        assert t_a2a > 3 * t_nb  # 7 steps of latency vs 1

    def test_unknown_method_rejected(self):
        model = make_model(Torus((2,), link_bw=MB))
        with pytest.raises(ValueError):
            model.round_time(CommPattern("p", "ring", ((0, 1),)), 1, "smoke")

    def test_intra_node_cap_respected(self):
        model = make_model(
            Crossbar(2, port_bw=1000 * MB), latency=0.0,
            intra_node_latency=0.0, copy_bw=100 * MB, eager_threshold=1 << 30,
        )
        t = model.phase_time([(0, 1, MB)])
        # copy cap = 50 MB/s
        assert t == pytest.approx(MB / (50 * MB))
