"""Tests for the algorithmic collectives."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import World
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import MB


def make_world(nprocs, **params):
    sim = Simulator()
    params.setdefault("latency", 1e-6)
    fabric = Fabric(sim, Torus((nprocs,), link_bw=1000 * MB), NetParams(**params))
    return World(fabric)


sizes = pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5, 7, 8, 13, 16])


class TestBarrier:
    @sizes
    def test_barrier_synchronizes(self, nprocs):
        from repro.sim import Sleep

        world = make_world(nprocs)
        exit_times = []

        def program(comm):
            yield Sleep(float(comm.rank))  # stagger arrivals
            yield from comm.barrier()
            exit_times.append(comm.wtime())

        world.run(program)
        # nobody exits before the last arrival at t = nprocs-1
        assert min(exit_times) >= nprocs - 1

    def test_barrier_cost_scales_logarithmically(self):
        def barrier_time(n):
            world = make_world(n, latency=10e-6)
            t = []

            def program(comm):
                yield from comm.barrier()
                t.append(comm.wtime())

            world.run(program)
            return max(t)

        t4, t16 = barrier_time(4), barrier_time(16)
        assert t16 < t4 * 4  # log growth, not linear


class TestBcast:
    @sizes
    def test_payload_reaches_everyone(self, nprocs):
        world = make_world(nprocs)
        got = {}

        def program(comm):
            data = "payload" if comm.rank == 0 else None
            result = yield from comm.bcast(root=0, nbytes=64, data=data)
            got[comm.rank] = result

        world.run(program)
        assert got == {r: "payload" for r in range(nprocs)}

    def test_nonzero_root(self):
        world = make_world(5)
        got = {}

        def program(comm):
            data = 42 if comm.rank == 3 else None
            result = yield from comm.bcast(root=3, nbytes=8, data=data)
            got[comm.rank] = result

        world.run(program)
        assert got == {r: 42 for r in range(5)}


class TestReduce:
    @sizes
    def test_sum(self, nprocs):
        world = make_world(nprocs)
        got = {}

        def program(comm):
            result = yield from comm.reduce(root=0, nbytes=8, value=comm.rank + 1)
            got[comm.rank] = result

        world.run(program)
        assert got[0] == nprocs * (nprocs + 1) // 2
        for r in range(1, nprocs):
            assert got[r] is None

    def test_max_op(self):
        world = make_world(6)
        got = {}

        def program(comm):
            value = (comm.rank * 7) % 6
            result = yield from comm.reduce(root=2, nbytes=8, value=value, op=max)
            got[comm.rank] = result

        world.run(program)
        assert got[2] == 5


class TestAllreduce:
    @sizes
    def test_sum_everywhere(self, nprocs):
        world = make_world(nprocs)
        got = {}

        def program(comm):
            result = yield from comm.allreduce(nbytes=8, value=comm.rank + 1)
            got[comm.rank] = result

        world.run(program)
        expected = nprocs * (nprocs + 1) // 2
        assert got == {r: expected for r in range(nprocs)}

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=12), st.data())
    def test_allreduce_max_property(self, nprocs, data):
        values = data.draw(
            st.lists(st.integers(-1000, 1000), min_size=nprocs, max_size=nprocs)
        )
        world = make_world(nprocs)
        got = {}

        def program(comm):
            result = yield from comm.allreduce(nbytes=8, value=values[comm.rank], op=max)
            got[comm.rank] = result

        world.run(program)
        assert set(got.values()) == {max(values)}


class TestGather:
    @sizes
    def test_root_collects_in_rank_order(self, nprocs):
        world = make_world(nprocs)
        got = {}

        def program(comm):
            result = yield from comm.gather(root=0, nbytes=16, value=f"v{comm.rank}")
            got[comm.rank] = result

        world.run(program)
        assert got[0] == [f"v{r}" for r in range(nprocs)]

    def test_nonzero_root(self):
        world = make_world(4)
        got = {}

        def program(comm):
            result = yield from comm.gather(root=2, nbytes=16, value=comm.rank)
            got[comm.rank] = result

        world.run(program)
        assert got[2] == [0, 1, 2, 3]
        assert got[0] is None


class TestAllgather:
    @sizes
    def test_everyone_gets_all_blocks(self, nprocs):
        world = make_world(nprocs)
        got = {}

        def program(comm):
            result = yield from comm.allgather(nbytes=16, value=comm.rank * 2)
            got[comm.rank] = result

        world.run(program)
        expected = [r * 2 for r in range(nprocs)]
        assert all(v == expected for v in got.values())


class TestAlltoallv:
    @sizes
    def test_sizes_and_payloads_routed(self, nprocs):
        world = make_world(nprocs)
        got = {}

        def program(comm):
            sizes = [(comm.rank + dst) % 5 * 100 for dst in range(nprocs)]
            data = [f"{comm.rank}->{dst}" for dst in range(nprocs)]
            result = yield from comm.alltoallv(sizes, data)
            got[comm.rank] = result

        world.run(program)
        for dst in range(nprocs):
            for src in range(nprocs):
                nbytes, payload = got[dst][src]
                assert nbytes == (src + dst) % 5 * 100
                assert payload == f"{src}->{dst}"

    def test_length_validation(self):
        world = make_world(3)

        def program(comm):
            yield from comm.alltoallv([1, 2])  # wrong length

        with pytest.raises(ValueError):
            world.run(program)

    def test_sparse_alltoallv_costs_more_than_p2p(self):
        # The b_eff insight: alltoallv exchanges p-1 messages even when
        # only two destinations carry data, so it pays more latency than
        # the direct nonblocking exchange.
        n = 16
        latency = 50e-6

        def alltoallv_time():
            world = make_world(n, latency=latency)
            t = []

            def program(comm):
                sizes = [0] * n
                sizes[(comm.rank + 1) % n] = 1024
                sizes[(comm.rank - 1) % n] = 1024
                yield from comm.alltoallv(sizes)
                t.append(comm.wtime())

            world.run(program)
            return max(t)

        def nonblocking_time():
            world = make_world(n, latency=latency)
            t = []

            def program(comm):
                left, right = (comm.rank - 1) % n, (comm.rank + 1) % n
                reqs = [
                    comm.isend(right, 1024), comm.isend(left, 1024),
                    comm.irecv(left), comm.irecv(right),
                ]
                yield from comm.waitall(reqs)
                t.append(comm.wtime())

            world.run(program)
            return max(t)

        assert alltoallv_time() > nonblocking_time() * 2
