"""The declarative scenario layer.

Three contracts are proved here:

* **Golden parity** — the pinned grammar instances compile to exactly
  the historic hard-coded tables (``tests/data/golden_scenarios.json``
  was emitted by the pre-refactor pattern modules), and the shim
  factories in ``beff.patterns`` / ``beffio.patterns`` agree with
  compiling the instances directly.
* **Round trips** — any valid grammar instance serializes to a dict,
  parses back to an equal instance with the same fingerprint, and
  compiles to a wellformed pattern list (hypothesis-driven).
* **Equivalence and dedupe** — a benchmark run with the paper scenario
  pinned is bit-identical to the default run, while the run-spec
  fingerprint distinguishes scenarios so the result store never serves
  one scenario's envelope for another.
"""

import dataclasses
import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.beff import MeasurementConfig, make_patterns
from repro.beffio import BeffIOConfig, build_patterns
from repro.beffio.patterns import extension_patterns
from repro.runtime import RunStore, cell_fingerprint, run_spec
from repro.scenarios import (
    ALIGNED_STREAMS,
    OCTET_BLOCKS,
    PAIRS_VS_ALL,
    PAPER_BEFF,
    PAPER_TABLE2,
    SCENARIOS,
    CommPatternSpec,
    CommScenario,
    ExplicitRings,
    IOPhase,
    IORow,
    IOScenario,
    NaturalPlacement,
    PaperRings,
    RandomPlacement,
    ScenarioError,
    Size,
    StandardRings,
    get_scenario,
    scenario_from_dict,
)
from repro.sim.randomness import RandomStreams
from repro.util import KB, MB

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "data" / "golden_scenarios.json").read_text()
)


class TestGoldenParity:
    """The grammar reproduces the historic tables bit for bit."""

    @pytest.mark.parametrize("nprocs", sorted(int(n) for n in GOLDEN["beff"]))
    def test_paper_beff_matches_golden(self, nprocs):
        compiled = PAPER_BEFF.compile(nprocs, RandomStreams())
        golden = GOLDEN["beff"][str(nprocs)]
        assert len(compiled) == len(golden) == 12
        for pat, want in zip(compiled, golden):
            assert pat.name == want["name"]
            assert pat.kind == want["kind"]
            assert [list(r) for r in pat.rings] == want["rings"]

    @pytest.mark.parametrize("mem", sorted(int(m) for m in GOLDEN["beffio"]))
    def test_paper_table2_matches_golden(self, mem):
        rows = PAPER_TABLE2.compile(mem)
        core = rows[: PAPER_TABLE2.num_core_rows]
        ext = rows[PAPER_TABLE2.num_core_rows :]
        for got, want in (
            (core, GOLDEN["beffio"][str(mem)]["table2"]),
            (ext, GOLDEN["beffio"][str(mem)]["extension"]),
        ):
            assert len(got) == len(want)
            for row, ref in zip(got, want):
                assert dataclasses.asdict(row) == ref

    def test_shims_compile_the_pinned_instances(self):
        assert make_patterns(16) == PAPER_BEFF.compile(16, RandomStreams())
        mem = 256 * MB
        rows = PAPER_TABLE2.compile(mem)
        assert build_patterns(mem) == rows[: PAPER_TABLE2.num_core_rows]
        assert extension_patterns(mem) == rows[PAPER_TABLE2.num_core_rows :]

    def test_table2_invariants(self):
        rows = build_patterns(256 * MB)
        assert len(rows) == 43
        assert sum(r.U for r in rows) == 64
        assert sum(1 for r in rows if r.U > 0) == 36


class TestRegistry:
    def test_registry_round_trips(self):
        for scenario in SCENARIOS.values():
            clone = scenario_from_dict(json.loads(json.dumps(scenario.to_dict())))
            assert clone == scenario
            assert clone.fingerprint() == scenario.fingerprint()

    def test_fingerprints_pairwise_distinct(self):
        prints = [s.fingerprint() for s in SCENARIOS.values()]
        assert len(set(prints)) == len(prints)

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("nope")

    def test_wrong_schema_rejected(self):
        d = PAPER_BEFF.to_dict()
        d["schema"] = 99
        with pytest.raises(ScenarioError, match="schema"):
            scenario_from_dict(d)

    def test_unknown_grammar_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_from_dict({"grammar": "quantum", "schema": 1})

    def test_octet_blocks_is_size_pinned(self):
        OCTET_BLOCKS.validate(8)
        with pytest.raises(ScenarioError):
            OCTET_BLOCKS.validate(12)


def _comm_scenarios():
    """Valid comm scenarios: each partition appears natural + random."""
    partition = st.one_of(
        st.integers(min_value=1, max_value=6).map(PaperRings),
        st.tuples(
            st.integers(min_value=2, max_value=8),
            st.integers(min_value=2, max_value=3),
        ).map(lambda t: StandardRings(standard=t[0], min_ring=t[1])),
    )
    return st.lists(partition, min_size=1, max_size=4, unique=True).map(
        lambda parts: CommScenario(
            name="hyp",
            patterns=tuple(
                spec
                for i, part in enumerate(parts)
                for spec in (
                    CommPatternSpec(f"ring-{i}", part, NaturalPlacement()),
                    CommPatternSpec(
                        f"random-{i}", part, RandomPlacement(stream=f"hyp.{i}")
                    ),
                )
            ),
        )
    )


def _io_scenarios():
    """Valid io scenarios: wellformed single-chunk rows, U sums free."""
    size = st.sampled_from(
        [Size(base=KB), Size(base=32 * KB), Size(base=MB), Size(mpart=True)]
    )
    row = st.tuples(size, st.integers(min_value=0, max_value=8)).map(
        lambda t: IORow(disk=t[0], U=t[1])
    )
    rows = st.lists(row, min_size=1, max_size=6).map(tuple)
    phases = st.lists(rows, min_size=1, max_size=4).map(
        lambda rs: tuple(IOPhase(pattern_type=t, rows=r) for t, r in enumerate(rs))
    )
    return phases.filter(
        lambda ps: sum(r.U for p in ps for r in p.rows) > 0
    ).map(
        lambda ps: IOScenario(
            name="hyp-io",
            phases=ps,
            sum_u=sum(r.U for p in ps for r in p.rows),
            type_weights=((0, 2.0),),
        )
    )


class TestHypothesisRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(scenario=_comm_scenarios(), nprocs=st.integers(min_value=4, max_value=40))
    def test_comm_compiles_to_partitions(self, scenario, nprocs):
        scenario.validate(nprocs)
        patterns = scenario.compile(nprocs, RandomStreams())
        assert len(patterns) == len(scenario.patterns)
        for pat in patterns:
            ranks = [r for ring in pat.rings for r in ring]
            assert sorted(ranks) == list(range(nprocs))  # no dupes, no gaps
            assert all(len(ring) >= 2 for ring in pat.rings)

    @settings(max_examples=40, deadline=None)
    @given(scenario=_comm_scenarios())
    def test_comm_round_trip_preserves_fingerprint(self, scenario):
        clone = scenario_from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert clone == scenario
        assert clone.fingerprint() == scenario.fingerprint()

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=_io_scenarios(),
        mem=st.sampled_from([256 * MB, 1536 * MB, 4096 * MB]),
    )
    def test_io_compiles_wellformed(self, scenario, mem):
        scenario.validate(mem)
        rows = scenario.compile(mem)
        assert sum(r.U for r in rows[: scenario.num_core_rows]) == scenario.sum_u
        assert [r.number for r in rows] == list(range(len(rows)))
        for row in rows:
            assert row.L >= row.l >= 1

    @settings(max_examples=40, deadline=None)
    @given(scenario=_io_scenarios())
    def test_io_round_trip_preserves_fingerprint(self, scenario):
        clone = scenario_from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert clone == scenario
        assert clone.fingerprint() == scenario.fingerprint()


class TestGrammarValidation:
    def test_duplicate_pattern_names(self):
        spec = CommPatternSpec("p", PaperRings(1), NaturalPlacement())
        rnd = CommPatternSpec(
            "p", PaperRings(1), RandomPlacement(stream="s")
        )
        with pytest.raises(ScenarioError, match="duplicate"):
            CommScenario(name="bad", patterns=(spec, rnd))

    def test_comm_requires_both_kinds(self):
        spec = CommPatternSpec("p", PaperRings(1), NaturalPlacement())
        with pytest.raises(ScenarioError, match="kind"):
            CommScenario(name="bad", patterns=(spec,))

    def test_io_sum_u_mismatch(self):
        phase = IOPhase(0, (IORow(disk=Size(base=MB), U=3),))
        with pytest.raises(ScenarioError, match="sum"):
            IOScenario(name="bad", phases=(phase,), sum_u=64)

    def test_explicit_rings_pin_nprocs(self):
        part = ExplicitRings(ring_sizes=(4, 4))
        spec = CommPatternSpec("p", part, NaturalPlacement())
        rnd = CommPatternSpec("r", part, RandomPlacement(stream="s"))
        s = CommScenario(name="octet", patterns=(spec, rnd))
        assert [len(r) for r in s.compile(8, RandomStreams())[0].rings] == [4, 4]
        with pytest.raises(ScenarioError):
            s.compile(9, RandomStreams())


class TestScenarioRuns:
    """Pinning the paper scenario is bit-identical to the default."""

    def test_beff_paper_scenario_bit_identical(self):
        base = MeasurementConfig(backend="analytic")
        pinned = dataclasses.replace(base, scenario=PAPER_BEFF)
        a = run_spec("b_eff", "t3e", 4, base).run()
        b = run_spec("b_eff", "t3e", 4, pinned).run()
        assert a == b
        assert a.b_eff.hex() == b.b_eff.hex()

    def test_beffio_paper_scenario_bit_identical(self):
        base = BeffIOConfig(T=0.6, pattern_types=(0,))
        pinned = dataclasses.replace(base, scenario=PAPER_TABLE2)
        a = run_spec("b_eff_io", "t3e", 2, base).run()
        b = run_spec("b_eff_io", "t3e", 2, pinned).run()
        assert a == b
        assert a.b_eff_io.hex() == b.b_eff_io.hex()

    def test_beff_custom_scenario_runs(self):
        cfg = MeasurementConfig(backend="analytic", scenario=PAIRS_VS_ALL)
        res = run_spec("b_eff", "t3e", 8, cfg).run()
        assert res.b_eff > 0
        assert set(res.per_pattern) == {p.name for p in PAIRS_VS_ALL.patterns}

    def test_beffio_custom_scenario_runs(self):
        cfg = BeffIOConfig(
            T=0.6, pattern_types=(0, 2), scenario=ALIGNED_STREAMS
        )
        res = run_spec("b_eff_io", "t3e", 2, cfg).run()
        assert res.b_eff_io > 0
        assert {t.pattern_type for t in res.type_results} == {0, 2}

    def test_beffio_scenario_without_requested_types_errors(self):
        cfg = BeffIOConfig(T=0.6, pattern_types=(4,), scenario=ALIGNED_STREAMS)
        with pytest.raises(ValueError, match="type"):
            run_spec("b_eff_io", "t3e", 2, cfg).run()

    def test_config_rejects_wrong_scenario_kind(self):
        with pytest.raises(TypeError):
            MeasurementConfig(scenario=ALIGNED_STREAMS)
        with pytest.raises(TypeError):
            BeffIOConfig(scenario=PAPER_BEFF)


class TestFingerprintsAndDedupe:
    def test_scenario_distinguishes_fingerprints(self):
        base = MeasurementConfig(backend="analytic")
        prints = {
            cell_fingerprint("b_eff", "t3e", 4, base),
            cell_fingerprint(
                "b_eff", "t3e", 4, dataclasses.replace(base, scenario=PAPER_BEFF)
            ),
            cell_fingerprint(
                "b_eff", "t3e", 4, dataclasses.replace(base, scenario=PAIRS_VS_ALL)
            ),
        }
        assert len(prints) == 3

    def test_none_scenario_keeps_legacy_fingerprint_shape(self):
        # the serialized config of a scenario-less run must not grow a
        # "scenario" key, so pre-scenario journals and stores still match
        from repro.runtime.spec import _config_dict

        d = _config_dict(MeasurementConfig(backend="analytic"))
        assert "scenario" not in d
        d = _config_dict(
            dataclasses.replace(
                MeasurementConfig(backend="analytic"), scenario=PAPER_BEFF
            )
        )
        assert d["scenario"]["name"] == "paper-beff"

    def test_store_dedupes_by_scenario(self, tmp_path):
        store = RunStore(tmp_path / "store")
        base = MeasurementConfig(backend="analytic")
        pinned = dataclasses.replace(base, scenario=PAIRS_VS_ALL)
        fp_base = cell_fingerprint("b_eff", "t3e", 4, base)
        fp_pinned = cell_fingerprint("b_eff", "t3e", 4, pinned)
        store.put(fp_pinned, run_spec("b_eff", "t3e", 4, pinned).envelope())
        assert store.get(fp_base) is None  # never served across scenarios
        assert store.get(fp_pinned) is not None
        assert (
            cell_fingerprint(
                "b_eff", "t3e", 4, dataclasses.replace(base, scenario=PAIRS_VS_ALL)
            )
            == fp_pinned
        )

    def test_configs_with_scenarios_pickle(self):
        import pickle

        for cfg in (
            MeasurementConfig(scenario=PAPER_BEFF),
            BeffIOConfig(scenario=ALIGNED_STREAMS),
        ):
            assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestScenariosCLI:
    def test_list(self, capsys):
        from repro.cli import main_repro

        assert main_repro(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_show(self, capsys):
        from repro.cli import main_repro

        assert main_repro(["scenarios", "show", "paper-table2"]) == 0
        out = capsys.readouterr().out
        assert PAPER_TABLE2.fingerprint() in out
        assert '"grammar": "io"' in out

    def test_show_unknown(self, capsys):
        from repro.cli import main_repro

        assert main_repro(["scenarios", "show", "nope"]) == 2
        assert "available" in capsys.readouterr().err

    def test_validate(self, tmp_path, capsys):
        from repro.cli import main_repro

        path = tmp_path / "s.json"
        path.write_text(json.dumps(PAIRS_VS_ALL.to_dict()))
        assert main_repro(["scenarios", "validate", str(path)]) == 0
        assert PAIRS_VS_ALL.fingerprint() in capsys.readouterr().out

    def test_validate_invalid(self, tmp_path, capsys):
        from repro.cli import main_repro

        d = PAIRS_VS_ALL.to_dict()
        d["patterns"] = d["patterns"][:1]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(d))
        assert main_repro(["scenarios", "validate", str(path)]) == 2
        assert "invalid scenario" in capsys.readouterr().err

    def test_sweep_grid_rejects_two_comm_scenarios(self):
        from repro.cli import main_repro

        with pytest.raises(SystemExit, match="name one"):
            main_repro(
                [
                    "sweep-grid",
                    "--scenario",
                    "pairs-vs-all",
                    "--scenario",
                    "paper-beff",
                ]
            )
