"""Chaos campaigns: supervised runs under injected machine realities.

The acceptance bar of the supervision layer, exercised end to end with
the :mod:`repro.runtime.chaos` adversaries: every campaign
*terminates*, a degraded grid is never silently ``valid``, poisoned
cells leave per-cell failure provenance (journal stub + store
sidecar), and a resumed campaign heals the poison and converges to the
byte-identical result of an undisturbed run.
"""

import errno
import json

import pytest

from repro.beff.measurement import MeasurementConfig
from repro.reporting.export import write_json_atomic
from repro.runtime import RunStore, canonical_envelope_text, expand_grid, run_grid
from repro.runtime import chaos
from repro.runtime.scheduler import SupervisionPolicy
from repro.runtime.sweep import SweepJournal, run_sweep

CFG = MeasurementConfig(backend="analytic")

#: fast-heartbeat policy used across the campaigns
POLICY = SupervisionPolicy(max_failures=2, heartbeat_interval_s=0.02)


def _grid(machines=("t3e", "sr2201"), partitions=(2, 4)):
    return expand_grid(list(machines), ["b_eff"], list(partitions), {"b_eff": CFG})


def _texts(outcome):
    return {
        c.spec.fingerprint(): canonical_envelope_text(c.envelope)
        for c in outcome.cells
    }


class TestChaosModule:
    def test_inactive_environment_is_a_no_op(self, monkeypatch):
        for var in chaos.ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        assert not chaos.active()
        chaos.on_cell("b_eff:t3e:2")  # no counter consumed, nothing raised
        payload = {"schema": 3}
        assert chaos.corrupt_payload(payload) is payload
        chaos.check_write()

    def test_ordinals_parse_and_reject_garbage(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_CRASH, "1, 3,5")
        assert chaos._ordinals(chaos.ENV_CRASH) == frozenset({1, 3, 5})
        monkeypatch.setenv(chaos.ENV_CRASH, "one")
        with pytest.raises(ValueError, match="comma-separated integers"):
            chaos._ordinals(chaos.ENV_CRASH)

    def test_counter_is_campaign_wide_via_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.ENV_DIR, str(tmp_path))
        assert [chaos._next("cells") for _ in range(3)] == [1, 2, 3]
        # a "different process" (fresh local state) continues the count
        assert chaos._next("cells") == 4
        assert (tmp_path / "cells.count").read_text() == "4"

    def test_poison_matches_exact_cell_key_only(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_POISON, "b_eff:t3e:4")
        chaos.on_cell("b_eff:t3e:2")  # different cell: untouched
        with pytest.raises(chaos.ChaosError, match="b_eff:t3e:4"):
            chaos.on_cell(chaos.cell_key("b_eff", "t3e", 4))


class TestEnospcAtomicWrite:
    """Satellite regression: a failed atomic write leaves no orphan."""

    def test_injected_enospc_raises_and_cleans_tmp(self, monkeypatch, tmp_path):
        target = tmp_path / "out.json"
        target.write_text('{"old": true}')
        monkeypatch.setenv(chaos.ENV_DIR, str(tmp_path / "chaos"))
        monkeypatch.setenv(chaos.ENV_ENOSPC, "1")
        with pytest.raises(OSError) as err:
            write_json_atomic(target, {"new": True})
        assert err.value.errno == errno.ENOSPC
        # the old file survives untouched and the temp file is gone
        assert json.loads(target.read_text()) == {"old": True}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_second_write_succeeds_after_the_full_disk_clears(
        self, monkeypatch, tmp_path
    ):
        target = tmp_path / "out.json"
        monkeypatch.setenv(chaos.ENV_DIR, str(tmp_path / "chaos"))
        monkeypatch.setenv(chaos.ENV_ENOSPC, "1")
        with pytest.raises(OSError):
            write_json_atomic(target, {"n": 1})
        write_json_atomic(target, {"n": 2})  # ordinal 2 is not armed
        assert json.loads(target.read_text()) == {"n": 2}
        assert list(tmp_path.glob("*.tmp")) == []


class TestPoisonedGrid:
    def test_completes_degraded_with_provenance(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.ENV_POISON, "b_eff:t3e:4")
        store = RunStore(tmp_path / "store")
        specs = _grid()
        out = run_grid(
            specs,
            store=store,
            journal_root=tmp_path / "journals",
            supervision=POLICY,
        )
        # the grid completed: every healthy cell produced its envelope
        assert len(out.cells) == len(specs) - 1
        assert len(out.poisoned) == 1
        record = out.poisoned[0]
        assert (record.benchmark, record.machine, record.nprocs) == ("b_eff", "t3e", 4)
        assert [a.kind for a in record.attempts] == ["error", "error"]
        assert "ChaosError" in record.last.message
        # never silently valid
        assert out.validity.state == "degraded"
        assert "cell:b_eff:t3e:4" in out.validity.flagged
        # provenance: store sidecar ...
        assert store.poisoned_keys() == [record.key]
        stub = store.poison(record.key)
        assert stub["poisoned"] is True
        assert len(stub["attempts"]) == 2
        assert store.stats.poisoned == 1
        # ... and journal stub, visible to the sweep journal reader
        journal = SweepJournal(tmp_path / "journals" / "b_eff__t3e")
        assert [r.nprocs for r in journal.poisoned().values()] == [4]

    def test_exported_grid_summary_is_wall_clock_free(
        self, monkeypatch, tmp_path
    ):
        """grid.json is a pure function of the run's inputs.

        The poisoned entries in the exported summary must use the
        export serialization (no per-attempt wall timings), so two
        degraded runs of the same grid export byte-identical trees
        even though their attempts measured different durations.
        """
        from repro.cli import EXIT_COMPLETED_DEGRADED, main_repro

        monkeypatch.setenv(chaos.ENV_POISON, "b_eff:t3e:4")

        def export(name):
            out_dir = tmp_path / name
            code = main_repro([
                "sweep-grid", "--machines", "t3e", "--benchmarks", "b_eff",
                "--partitions", "2,4", "--max-failures", "2",
                "--out", str(out_dir),
            ])
            assert code == EXIT_COMPLETED_DEGRADED
            return (out_dir / "grid.json").read_bytes()

        first, second = export("a"), export("b")
        assert first == second
        summary = json.loads(first)
        assert [p["key"] for p in summary["poisoned"]]
        assert "elapsed_s" not in first.decode()

    def test_all_cells_poisoned_is_invalid_sweep(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_POISON, "b_eff:t3e:2,b_eff:t3e:4")
        outcome = run_sweep("b_eff", "t3e", [2, 4], config=CFG, supervision=POLICY)
        assert outcome.results == ()
        assert len(outcome.poisoned) == 2
        assert outcome.validity.state == "invalid"
        assert "every partition was poisoned" in outcome.validity.reason

    def test_partial_poison_keeps_the_surviving_system_value(self, monkeypatch):
        clean = run_sweep("b_eff", "t3e", [2], config=CFG)
        monkeypatch.setenv(chaos.ENV_POISON, "b_eff:t3e:4")
        outcome = run_sweep("b_eff", "t3e", [2, 4], config=CFG, supervision=POLICY)
        assert [r.nprocs for r in outcome.results] == [2]
        assert outcome.system_value == clean.system_value
        assert outcome.validity.state == "degraded"
        assert "partition:4" in outcome.validity.flagged


class TestResumeHealsPoison:
    def test_resumed_grid_is_byte_identical_to_undisturbed(
        self, monkeypatch, tmp_path
    ):
        specs = _grid()
        # undisturbed supervised baseline
        baseline = run_grid(
            specs,
            store=RunStore(tmp_path / "store-a"),
            journal_root=tmp_path / "journals-a",
            supervision=POLICY,
        )
        assert baseline.validity.ok

        # chaos run: one cell poisoned, campaign completes degraded
        store_b = RunStore(tmp_path / "store-b")
        monkeypatch.setenv(chaos.ENV_POISON, "b_eff:t3e:4")
        disturbed = run_grid(
            specs,
            store=store_b,
            journal_root=tmp_path / "journals-b",
            supervision=POLICY,
        )
        assert disturbed.validity.state == "degraded"
        assert store_b.poisoned_keys() != []

        # resume without chaos: cache serves the survivors, the poisoned
        # cell re-runs and heals — sidecar cleared, validity valid
        monkeypatch.delenv(chaos.ENV_POISON)
        healed = run_grid(
            specs,
            store=store_b,
            journal_root=tmp_path / "journals-b",
            supervision=POLICY,
        )
        assert healed.poisoned == ()
        assert healed.validity.ok
        assert healed.fresh == 1 and healed.cached == len(specs) - 1
        assert store_b.poisoned_keys() == []
        assert _texts(healed) == _texts(baseline)

        # the journal trees converge byte-for-byte as well
        root_a, root_b = tmp_path / "journals-a", tmp_path / "journals-b"
        files_a = sorted(p.relative_to(root_a) for p in root_a.rglob("*.json"))
        files_b = sorted(p.relative_to(root_b) for p in root_b.rglob("*.json"))
        assert files_a == files_b
        for rel in files_a:
            assert (root_a / rel).read_bytes() == (root_b / rel).read_bytes()

    def test_sweep_journal_stub_heals_on_success(self, monkeypatch, tmp_path):
        jdir = tmp_path / "journal"
        monkeypatch.setenv(chaos.ENV_POISON, "b_eff:t3e:4")
        poisoned = run_sweep(
            "b_eff", "t3e", [2, 4], config=CFG,
            journal=jdir, supervision=POLICY,
        )
        journal = SweepJournal(jdir)
        assert 4 in journal.poisoned()
        assert poisoned.validity.state == "degraded"
        monkeypatch.delenv(chaos.ENV_POISON)
        healed = run_sweep(
            "b_eff", "t3e", [2, 4], config=CFG,
            journal=jdir, resume=True, supervision=POLICY,
        )
        assert healed.poisoned == ()
        assert healed.validity.ok
        assert journal.poisoned() == {}
        clean = run_sweep("b_eff", "t3e", [2, 4], config=CFG)
        assert healed.system_value == clean.system_value


class TestHangAndCrashCampaigns:
    def test_hung_workers_terminate_via_heartbeat(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.ENV_DIR, str(tmp_path / "chaos"))
        monkeypatch.setenv(chaos.ENV_HANG, "1,2")
        out = run_grid(
            _grid(machines=("t3e",), partitions=(2,)),
            supervision=SupervisionPolicy(
                max_failures=2,
                heartbeat_interval_s=0.02,
                heartbeat_timeout_s=0.4,
            ),
        )
        assert out.cells == ()
        assert len(out.poisoned) == 1
        assert [a.kind for a in out.poisoned[0].attempts] == [
            "heartbeat-lost", "heartbeat-lost",
        ]
        assert out.validity.state in ("degraded", "invalid")
        assert not out.validity.ok

    def test_crashed_worker_retries_to_clean_completion(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(chaos.ENV_DIR, str(tmp_path / "chaos"))
        monkeypatch.setenv(chaos.ENV_CRASH, "1")
        out = run_grid(
            _grid(machines=("t3e",), partitions=(2,)), supervision=POLICY
        )
        assert out.poisoned == ()
        assert out.validity.ok
        assert len(out.cells) == 1
        # the healed result is the undisturbed result, bit for bit
        monkeypatch.delenv(chaos.ENV_CRASH)
        clean = run_grid(_grid(machines=("t3e",), partitions=(2,)))
        assert _texts(out) == _texts(clean)

    def test_corrupt_return_never_becomes_a_result(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.ENV_DIR, str(tmp_path / "chaos"))
        monkeypatch.setenv(chaos.ENV_CORRUPT, "1,2")
        out = run_grid(
            _grid(machines=("t3e",), partitions=(2,)), supervision=POLICY
        )
        # both attempts returned garbage -> poisoned as corrupt-return
        assert len(out.poisoned) == 1
        assert [a.kind for a in out.poisoned[0].attempts] == [
            "corrupt-return", "corrupt-return",
        ]
        # the corrupt marker payload appears nowhere in the outcome
        assert out.cells == ()


class TestStorePoisonSidecar:
    def test_record_read_list_and_heal_on_put(self, tmp_path):
        from repro.runtime.envelope import envelope_for
        from repro.runtime.sweep import adapter_for
        from repro.machines import get_machine

        store = RunStore(tmp_path / "store")
        store.record_poison("k1", {"poisoned": True, "attempts": []})
        assert store.poisoned_keys() == ["k1"]
        assert store.poison("k1")["poisoned"] is True
        assert store.poison("missing") is None
        assert store.stats.poisoned == 1
        assert "poisoned=1" in store.stats.describe()
        # a successful put of the same key heals the quarantine
        result = adapter_for("b_eff").run(get_machine("t3e"), 2, CFG)
        store.put("k1", envelope_for(result, machine="t3e"))
        assert store.poisoned_keys() == []
        assert store.poison("k1") is None

    def test_unreadable_sidecar_reads_as_no_poison(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.record_poison("k1", {"poisoned": True})
        store.poison_path("k1").write_text("{torn")
        assert store.poison("k1") is None
