"""The grid scheduler: expansion, cost model, planning, execution.

The scheduler's load-bearing claims: grids expand deterministically
(with b_eff_io dropped on machines without a PFS), the cost model
orders cells the way measured wall time does, the dynamic plan beats
static chunking on skewed grids by construction, run_grid dedupes
identical fingerprints and composes with the store, and retry
accounting keys by (machine, nprocs, benchmark) so one machine's
failures never exhaust another's budget.
"""

import json

import pytest

from repro.beff.measurement import MeasurementConfig
from repro.beffio.benchmark import BeffIOConfig
from repro.runtime import (
    CostModel,
    GridScheduler,
    RunStore,
    canonical_envelope_text,
    expand_grid,
    plan_schedule,
    run_grid,
    run_spec,
)
from repro.runtime.scheduler import _GridRetry, GridWorkerError
from repro.runtime.sweep import SweepJournal, _Retry, adapter_for

CFG = MeasurementConfig(backend="analytic")
IO_CFG = BeffIOConfig(T=1.0, pattern_types=(0,))


class TestExpandGrid:
    def test_full_cross_product(self):
        specs = expand_grid(["t3e", "sr2201"], ["b_eff"], [2, 4], {"b_eff": CFG})
        assert len(specs) == 4
        assert {(s.machine, s.nprocs) for s in specs} == {
            ("t3e", 2), ("t3e", 4), ("sr2201", 2), ("sr2201", 4),
        }

    def test_non_pfs_machines_skip_beffio(self):
        specs = expand_grid(
            ["t3e", "sr2201"], ["b_eff", "b_eff_io"],
            [2], {"b_eff": CFG, "b_eff_io": IO_CFG},
        )
        # sr2201 has no PFS model: its b_eff_io cell is dropped
        assert [(s.benchmark, s.machine) for s in specs] == [
            ("b_eff", "t3e"), ("b_eff_io", "t3e"), ("b_eff", "sr2201"),
        ]

    def test_unknown_machine_fails_early(self):
        with pytest.raises(KeyError):
            expand_grid(["not-a-machine"], ["b_eff"], [2], {"b_eff": CFG})

    def test_partitions_are_deduped_and_sorted(self):
        specs = expand_grid(["t3e"], ["b_eff"], [4, 2, 4], {"b_eff": CFG})
        assert [s.nprocs for s in specs] == [2, 4]


class TestCostModel:
    def test_cost_grows_with_nprocs(self):
        model = CostModel()
        small = model.cost(run_spec("b_eff", "t3e", 2, CFG))
        large = model.cost(run_spec("b_eff", "t3e", 16, CFG))
        assert large > small

    def test_des_costs_more_than_analytic(self):
        model = CostModel()
        analytic = model.cost(run_spec("b_eff", "t3e", 4, CFG))
        des = model.cost(
            run_spec("b_eff", "t3e", 4, MeasurementConfig(backend="des"))
        )
        assert des > analytic

    def test_beffio_cost_scales_with_scheduled_time(self):
        model = CostModel()
        short = model.cost(run_spec("b_eff_io", "sp", 2, BeffIOConfig(T=2.0)))
        long = model.cost(run_spec("b_eff_io", "sp", 2, BeffIOConfig(T=20.0)))
        assert long == pytest.approx(10 * short)

    def test_calibrate_fits_the_measured_exponent(self, tmp_path):
        # synthetic trajectory: wall ~ procs^2 exactly
        payload = {"rounds": [
            {"procs": 8, "incremental_wall_s": 64.0},
            {"procs": 2, "incremental_wall_s": 4.0},
        ]}
        (tmp_path / "BENCH_fluid.json").write_text(json.dumps(payload))
        model = CostModel.calibrate(tmp_path)
        assert model.exponent == pytest.approx(2.0)

    def test_calibrate_defaults_without_data(self, tmp_path):
        assert CostModel.calibrate(tmp_path).exponent == CostModel().exponent
        (tmp_path / "BENCH_fluid.json").write_text("{broken")
        assert CostModel.calibrate(tmp_path).exponent == CostModel().exponent

    def test_calibrate_from_committed_baseline(self):
        # the repo's own BENCH_fluid.json yields a sane super-linear fit
        model = CostModel.calibrate("benchmarks/results")
        assert 0.5 <= model.exponent <= 3.0


class TestPlanSchedule:
    SKEWED = [5.0] + [1.0] * 8  # one big cell among small ones

    def test_dynamic_beats_static_on_skew(self):
        dynamic = plan_schedule(self.SKEWED, jobs=2, policy="dynamic")
        static = plan_schedule(self.SKEWED, jobs=2, policy="static")
        assert dynamic.makespan < static.makespan
        # LPT bound: dynamic is within 4/3 of the ideal split
        ideal = sum(self.SKEWED) / 2
        assert dynamic.makespan <= 4 / 3 * max(ideal, max(self.SKEWED))

    def test_dynamic_dispatches_longest_first(self):
        plan = plan_schedule(self.SKEWED, jobs=2, policy="dynamic")
        assert plan.dispatch[0] == 0  # the big cell starts first

    def test_static_is_contiguous_chunks(self):
        plan = plan_schedule([1.0] * 6, jobs=2, policy="static")
        assert plan.assignments == ((0, 1, 2), (3, 4, 5))
        assert plan.dispatch == (0, 1, 2, 3, 4, 5)

    def test_plans_are_deterministic(self):
        a = plan_schedule(self.SKEWED, jobs=3, policy="dynamic")
        b = plan_schedule(self.SKEWED, jobs=3, policy="dynamic")
        assert a == b

    def test_every_cell_assigned_exactly_once(self):
        for policy in ("dynamic", "static"):
            plan = plan_schedule(self.SKEWED, jobs=4, policy=policy)
            assigned = sorted(i for chunk in plan.assignments for i in chunk)
            assert assigned == list(range(len(self.SKEWED)))

    def test_empty_and_error_cases(self):
        assert plan_schedule([], jobs=2).makespan == 0.0
        with pytest.raises(ValueError, match="jobs"):
            plan_schedule([1.0], jobs=0)
        with pytest.raises(ValueError, match="policy"):
            plan_schedule([1.0], jobs=1, policy="chaotic")


class TestRunGrid:
    GRID = dict(
        machines=["t3e", "sr2201"], benchmarks=["b_eff"], partitions=[2, 4],
    )

    def _specs(self):
        return expand_grid(configs={"b_eff": CFG}, **self.GRID)

    def test_cold_then_warm(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = run_grid(self._specs(), store=store)
        assert cold.fresh == 4 and cold.cached == 0 and cold.deduped == 0
        warm = run_grid(self._specs(), store=store)
        assert warm.fresh == 0 and warm.cached == 4
        for c_cold, c_warm in zip(cold.cells, warm.cells):
            assert canonical_envelope_text(c_cold.envelope) == canonical_envelope_text(
                c_warm.envelope
            )
            assert c_warm.source == "cache"

    def test_duplicate_specs_execute_once(self):
        specs = self._specs()
        out = run_grid(specs + specs)
        assert out.deduped == len(specs)
        assert out.fresh == len(specs)
        # duplicate cells carry the identical envelope object
        for a, b in zip(out.cells[: len(specs)], out.cells[len(specs):]):
            assert a.envelope is b.envelope
            assert b.source == "dedup"

    def test_dispatch_order_is_longest_first(self):
        # 4-proc cells cost more than 2-proc cells under the model
        out = run_grid(self._specs())
        by_fp = {s.fingerprint(): s.nprocs for s in self._specs()}
        dispatched = [by_fp[fp] for fp in out.dispatch_order]
        assert dispatched == sorted(dispatched, reverse=True)

    def test_parallel_matches_serial_bit_exactly(self):
        serial = run_grid(self._specs(), jobs=1)
        parallel = run_grid(self._specs(), jobs=2)
        for a, b in zip(serial.cells, parallel.cells):
            assert canonical_envelope_text(a.envelope) == canonical_envelope_text(
                b.envelope
            )

    def test_static_policy_matches_dynamic_bit_exactly(self):
        dynamic = run_grid(self._specs(), jobs=2, policy="dynamic")
        static = run_grid(self._specs(), jobs=2, policy="static")
        for a, b in zip(dynamic.cells, static.cells):
            assert canonical_envelope_text(a.envelope) == canonical_envelope_text(
                b.envelope
            )

    def test_journal_root_composes_with_sweep_resume(self, tmp_path):
        from repro.runtime.sweep import run_sweep

        root = tmp_path / "journals"
        out = run_grid(self._specs(), journal_root=root)
        # the grid's journals resume through the single-machine sweep
        resumed = run_sweep(
            "b_eff", "t3e", [2, 4], config=CFG,
            journal=root / "b_eff__t3e", resume=True,
        )
        assert resumed.fresh == 0
        values = {
            c.spec.nprocs: c.envelope.values["b_eff"]
            for c in out.cells
            if c.spec.machine == "t3e"
        }
        assert resumed.partition_values() == values

    def test_mixed_benchmark_grid(self, tmp_path):
        specs = expand_grid(
            ["t3e"], ["b_eff", "b_eff_io"], [2],
            {"b_eff": CFG, "b_eff_io": IO_CFG},
        )
        out = run_grid(specs, store=RunStore(tmp_path / "store"))
        assert {c.spec.benchmark for c in out.cells} == {"b_eff", "b_eff_io"}
        assert out.fresh == 2


class TestRetryKeying:
    def test_grid_retry_keys_by_machine_nprocs_benchmark(self):
        """Two machines failing the same nprocs never pool attempts."""
        retry = _GridRetry(retries=1)
        boom = RuntimeError("boom")
        spec_a = run_spec("b_eff", "t3e", 2, CFG)
        spec_b = run_spec("b_eff", "sr2201", 2, CFG)
        retry.failed(spec_a, boom)  # t3e attempt 1: tolerated
        # under nprocs-only pooling this would be "attempt 2" and raise
        retry.failed(spec_b, boom)  # sr2201 attempt 1: tolerated
        with pytest.raises(GridWorkerError, match="t3e"):
            retry.failed(spec_a, boom)  # t3e attempt 2: over budget

    def test_sweep_retry_keys_by_machine_not_nprocs_only(self):
        """Regression: _Retry pooled attempts by nprocs across machines."""
        adapter = adapter_for("b_eff")
        retry = _Retry(adapter, "t3e", CFG, retries=1, backoff=0.0)
        boom = RuntimeError("boom")
        retry.failed(2, boom)                      # t3e nprocs=2: attempt 1
        # under the old nprocs-only keying these would pool into the
        # t3e counter and raise as "attempt 2" / "attempt 3"
        retry.failed(2, boom, machine="sr2201")    # sr2201: attempt 1
        retry.failed(2, boom, machine="sx5")       # sx5: attempt 1
        from repro.runtime.sweep import SweepWorkerError

        with pytest.raises(SweepWorkerError):
            retry.failed(2, boom)                  # t3e attempt 2 — over


class TestLegacyJournals:
    def test_schema1_journal_resumes_via_legacy_fingerprint(self, tmp_path):
        """Journals written before the unified keying stay resumable."""
        from repro.runtime.spec import legacy_sweep_fingerprint
        from repro.runtime.sweep import run_sweep

        baseline = run_sweep("b_eff", "t3e", [2, 4], config=CFG)
        # fabricate a schema-1 journal exactly as PR 5 wrote it
        jdir = tmp_path / "old-journal"
        jdir.mkdir()
        (jdir / "manifest.json").write_text(json.dumps({
            "schema": 1,
            "machine": "t3e",
            "fingerprint": legacy_sweep_fingerprint("b_eff", "t3e", CFG),
        }))
        journal = SweepJournal(jdir)
        for result in baseline.results:
            journal.record(result, "t3e")
        resumed = run_sweep(
            "b_eff", "t3e", [2, 4], config=CFG, journal=jdir, resume=True
        )
        assert resumed.fresh == 0
        assert resumed.system_value == baseline.system_value

    def test_schema1_with_wrong_config_is_rejected(self, tmp_path):
        from repro.runtime.spec import legacy_sweep_fingerprint
        from repro.runtime.sweep import JournalMismatchError, run_sweep

        jdir = tmp_path / "old-journal"
        jdir.mkdir()
        other = MeasurementConfig(backend="des")
        (jdir / "manifest.json").write_text(json.dumps({
            "schema": 1,
            "machine": "t3e",
            "fingerprint": legacy_sweep_fingerprint("b_eff", "t3e", other),
        }))
        with pytest.raises(JournalMismatchError):
            run_sweep(
                "b_eff", "t3e", [2], config=CFG, journal=jdir, resume=True
            )

    def test_unknown_schema_is_rejected(self, tmp_path):
        from repro.runtime.sweep import JournalMismatchError, run_sweep

        jdir = tmp_path / "journal"
        jdir.mkdir()
        (jdir / "manifest.json").write_text(json.dumps({
            "schema": 7, "machine": "t3e", "fingerprint": "x",
        }))
        with pytest.raises(JournalMismatchError, match="schema"):
            run_sweep(
                "b_eff", "t3e", [2], config=CFG, journal=jdir, resume=True
            )


class TestBrokenPoolRecovery:
    """A chaos-killed pool worker breaks the whole pool; run_grid must
    rebuild it, resubmit the unfinished cells, and keep the per-cell
    retry accounting across the recreation."""

    def _specs(self):
        return expand_grid(["t3e"], ["b_eff"], [2, 4], {"b_eff": CFG})

    def test_transient_worker_kill_heals(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "1")
        # generous budget: one armed crash, but a dying worker can fail
        # every in-flight future, charging innocent cells one retry too
        out = run_grid(self._specs(), jobs=2, retries=3)
        assert out.fresh == 2
        # the recovered results equal an undisturbed run bit-exactly
        monkeypatch.delenv("REPRO_CHAOS_CRASH")
        clean = run_grid(self._specs())
        assert {
            c.spec.fingerprint(): canonical_envelope_text(c.envelope)
            for c in out.cells
        } == {
            c.spec.fingerprint(): canonical_envelope_text(c.envelope)
            for c in clean.cells
        }

    def test_retry_counters_survive_pool_recreation(self, monkeypatch, tmp_path):
        # two kills, one retry: the second crash must be charged against
        # the counter from before the pool was rebuilt (attempt 2), not
        # a fresh budget
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "1,2,3,4")
        with pytest.raises(GridWorkerError, match="after 2 attempt") as err:
            run_grid(self._specs(), jobs=2, retries=1)
        assert err.value.attempts == 2

    def test_dedupe_composes_with_recovery(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
        monkeypatch.setenv("REPRO_CHAOS_CRASH", "1")
        specs = self._specs()
        out = run_grid(specs + specs, jobs=2, retries=3)
        # duplicates still collapse to one execution each, even though
        # the pool was rebuilt mid-run
        assert out.deduped == len(specs)
        assert out.fresh == len(specs)
        for a, b in zip(out.cells[: len(specs)], out.cells[len(specs):]):
            assert a.envelope is b.envelope


class TestWorkerErrorIdentity:
    """Satellite: worker errors carry the failing cell's full identity
    both in the message and as structured attributes."""

    def test_grid_worker_error_attributes(self):
        retry = _GridRetry(retries=0)
        spec = run_spec("b_eff", "t3e", 4, CFG)
        with pytest.raises(GridWorkerError) as err:
            retry.failed(spec, RuntimeError("boom"))
        exc = err.value
        assert exc.fingerprint == spec.fingerprint()
        assert (exc.benchmark, exc.machine, exc.nprocs) == ("b_eff", "t3e", 4)
        assert exc.attempts == 1
        assert exc.fingerprint[:12] in str(exc)
        assert "after 1 attempt(s)" in str(exc)

    def test_sweep_worker_error_attributes(self):
        from repro.runtime.spec import cell_fingerprint
        from repro.runtime.sweep import SweepWorkerError

        retry = _Retry(adapter_for("b_eff"), "t3e", CFG, retries=0, backoff=0.0)
        with pytest.raises(SweepWorkerError) as err:
            retry.failed(4, RuntimeError("boom"))
        exc = err.value
        assert exc.fingerprint == cell_fingerprint("b_eff", "t3e", 4, CFG)
        assert (exc.benchmark, exc.machine, exc.nprocs) == ("b_eff", "t3e", 4)
        assert exc.attempts == 1
        assert exc.fingerprint[:12] in str(exc)


class TestGridRetryExecution:
    def test_failing_cell_surfaces_with_traceback(self, monkeypatch):
        import repro.runtime.scheduler as scheduler

        def explode(spec):
            raise RuntimeError("cell exploded")

        monkeypatch.setattr(scheduler, "_execute", explode)
        with pytest.raises(GridWorkerError, match="cell exploded") as err:
            run_grid([run_spec("b_eff", "t3e", 2, CFG)], retries=1)
        assert "RuntimeError" in err.value.worker_traceback

    def test_retries_then_success(self, monkeypatch):
        import repro.runtime.scheduler as scheduler

        real = scheduler._execute
        attempts = []

        def flaky(spec):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return real(spec)

        monkeypatch.setattr(scheduler, "_execute", flaky)
        out = run_grid([run_spec("b_eff", "t3e", 2, CFG)], retries=2)
        assert out.fresh == 1
        assert len(attempts) == 3
