"""End-to-end tests of the b_eff benchmark on small simulated machines."""

import pytest

from repro.beff import MeasurementConfig, run_beff, run_detail
from repro.beff.analysis import balance_factor
from repro.beff.measurement import paper_fidelity
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.topology import ClusteredSMP, Crossbar, Torus
from repro.util import GB, MB

MEM = 512 * MB  # per-proc memory -> Lmax = 4 MB


def torus_factory(n, link_bw=300 * MB, latency=10e-6, **extra):
    def make():
        sim = Simulator()
        params = NetParams(latency=latency, **extra)
        return Fabric(sim, Torus((n,), link_bw=link_bw), params)

    return make


FAST = MeasurementConfig(methods=("sendrecv", "nonblocking"), max_looplength=1)
FAST_AN = MeasurementConfig(
    methods=("sendrecv", "nonblocking"), max_looplength=1, backend="analytic"
)


class TestRunBeffDes:
    def test_result_structure(self):
        res = run_beff(torus_factory(4), MEM, FAST)
        assert res.nprocs == 4
        assert res.lmax == 4 * MB
        assert len(res.sizes) == 21
        assert len(res.per_pattern) == 12
        # 12 patterns x 21 sizes x 2 methods x 1 rep
        assert len(res.records) == 12 * 21 * 2
        assert res.b_eff > 0
        assert res.b_eff_per_proc == pytest.approx(res.b_eff / 4)

    def test_beff_below_peak(self):
        # aggregate effective bandwidth can't exceed what the links allow
        res = run_beff(torus_factory(4, link_bw=300 * MB), MEM, FAST)
        # 4 procs x 2 directions x 300 MB/s absolute ceiling
        assert res.b_eff < 4 * 2 * 300 * MB

    def test_average_below_lmax_value(self):
        # small messages drag the average below the Lmax-only value
        res = run_beff(torus_factory(4), MEM, FAST)
        assert res.b_eff < res.b_eff_at_lmax

    def test_random_at_most_ring_on_torus(self):
        res = run_beff(torus_factory(8), MEM, FAST)
        assert res.logavg_random <= res.logavg_ring * 1.01

    def test_deterministic(self):
        r1 = run_beff(torus_factory(4), MEM, FAST)
        r2 = run_beff(torus_factory(4), MEM, FAST)
        assert r1.b_eff == r2.b_eff
        assert [rec.bandwidth for rec in r1.records] == [
            rec.bandwidth for rec in r2.records
        ]

    def test_memory_transfer_time(self):
        res = run_beff(torus_factory(4), MEM, FAST)
        expected = 4 * MEM / res.b_eff
        assert res.memory_transfer_time() == pytest.approx(expected)

    def test_summary_row_keys(self):
        res = run_beff(torus_factory(2), MEM, FAST)
        row = res.summary_row()
        assert row["procs"] == 2
        assert row["Lmax"] == 4 * MB
        assert row["b_eff"] > 0

    def test_alltoallv_method_runs(self):
        cfg = MeasurementConfig(methods=("alltoallv",), max_looplength=1)
        res = run_beff(torus_factory(4), MEM, cfg)
        assert res.b_eff > 0

    def test_alltoallv_never_wins_big(self):
        # max over methods should come from nonblocking for ring traffic
        cfg = MeasurementConfig(max_looplength=1)
        res = run_beff(torus_factory(4), MEM, cfg)
        cfg_nb = MeasurementConfig(methods=("nonblocking",), max_looplength=1)
        res_nb = run_beff(torus_factory(4), MEM, cfg_nb)
        assert res.b_eff == pytest.approx(res_nb.b_eff, rel=1e-6)


class TestSharedMemoryMachines:
    def test_crossbar_beff_reflects_half_copy_bw(self):
        copy_bw = 800 * MB

        def make():
            sim = Simulator()
            return Fabric(
                sim,
                Crossbar(4, port_bw=8 * GB),
                NetParams(latency=2e-6, intra_node_latency=2e-6, copy_bw=copy_bw),
            )

        res = run_beff(make, MEM, FAST)
        # at Lmax, each proc moves 2 messages through a copy-capped path;
        # per-proc ring bandwidth ~ copy_bw/2 x 2 msgs = copy_bw... the key
        # check: the cap is active (well below the 8 GB/s ports)
        assert res.ring_only_at_lmax_per_proc < copy_bw * 1.5

    def test_placement_effect_on_clusters(self):
        def cluster(placement):
            def make():
                sim = Simulator()
                topo = ClusteredSMP(
                    2, 4, membus_bw=4 * GB, nic_bw=150 * MB, placement=placement
                )
                return Fabric(
                    sim, topo,
                    NetParams(latency=10e-6, intra_node_latency=3e-6, copy_bw=2 * GB),
                )

            return make

        seq = run_beff(cluster("sequential"), MEM, FAST)
        rr = run_beff(cluster("round-robin"), MEM, FAST)
        # paper Table 1 (SR 8000): sequential placement roughly doubles
        # the ring bandwidth vs round-robin
        assert seq.ring_only_at_lmax > rr.ring_only_at_lmax * 1.3


class TestAnalyticBackend:
    def test_matches_des_on_symmetric_pattern(self):
        des = run_beff(torus_factory(8), MEM, FAST)
        ana = run_beff(torus_factory(8), MEM, FAST_AN)
        assert ana.b_eff == pytest.approx(des.b_eff, rel=0.15)
        assert ana.ring_only_at_lmax == pytest.approx(des.ring_only_at_lmax, rel=0.1)

    def test_analytic_scales_to_many_procs(self):
        res = run_beff(torus_factory(64), MEM, FAST_AN)
        assert res.nprocs == 64
        assert res.b_eff > 0

    def test_analytic_alltoallv(self):
        cfg = MeasurementConfig(max_looplength=1, backend="analytic")
        res = run_beff(torus_factory(8), MEM, cfg)
        assert res.b_eff > 0


class TestPaperFidelityConfig:
    def test_constants(self):
        cfg = paper_fidelity()
        assert cfg.repetitions == 3
        assert cfg.max_looplength == 300

    def test_looplength_adaptation(self):
        cfg = MeasurementConfig(max_looplength=300)
        assert cfg.next_looplength(None) == 300
        # 1 ms per iteration -> ~3.75 iterations
        assert cfg.next_looplength(1e-3) == 4
        assert cfg.next_looplength(10.0) == 1
        assert cfg.next_looplength(1e-9) == 300

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            MeasurementConfig(methods=())
        with pytest.raises(ValueError):
            MeasurementConfig(methods=("smoke",))
        with pytest.raises(ValueError):
            MeasurementConfig(repetitions=0)
        with pytest.raises(ValueError):
            MeasurementConfig(backend="quantum")
        with pytest.raises(ValueError):
            MeasurementConfig(loop_time_min=5e-3, loop_time_max=2e-3)


class TestBalanceFactor:
    def test_units(self):
        # 20 GB/s at 450 GFlops -> ~0.044 bytes/flop
        assert balance_factor(20e9, 450e9) == pytest.approx(0.0444, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            balance_factor(1.0, 0.0)


class TestDetailPatterns:
    def test_detail_records_present(self):
        res = run_detail(torus_factory(8), MEM, iterations=1)
        assert "ping-pong" in res
        assert "bisection-far" in res
        assert "bisection-near" in res
        assert "worst-cycle" in res
        assert any(k.startswith("cart2d") for k in res)
        assert any(k.startswith("cart3d") for k in res)

    def test_pingpong_exceeds_parallel_per_proc(self):
        # the classic observation: ping-pong >> b_eff per proc under full load
        res = run_detail(torus_factory(8), MEM, iterations=1)
        full = run_beff(torus_factory(8), MEM, FAST)
        assert res["ping-pong"].bandwidth > full.b_eff_per_proc

    def test_near_bisection_at_least_far(self):
        res = run_detail(torus_factory(16), MEM, iterations=1)
        assert res["bisection-near"].bandwidth >= res["bisection-far"].bandwidth * 0.99

    def test_two_proc_machine(self):
        res = run_detail(torus_factory(2), MEM, iterations=1)
        assert res["ping-pong"].bandwidth > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_detail(torus_factory(4), MEM, iterations=0)
