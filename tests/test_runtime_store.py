"""The content-addressed result store and its failure edges.

The store's contract is "never simulate twice, never serve garbage":
warm reads are byte-identical to cold executions, corruption is
quarantined and transparently re-executed, eviction can never tear a
read, and N concurrent submitters of the same fingerprint cost one
simulation.  Each of those claims gets a direct test here, plus the
composition with the sweep journal (kill+resume with a warm cache
stays bit-identical).
"""

import json
import threading

import pytest

from repro.beff.measurement import MeasurementConfig
from repro.beff.sweep import run_sweep as run_beff_sweep
from repro.runtime import (
    RunStore,
    canonical_envelope_text,
    cell_fingerprint,
    run_spec,
)
from repro.runtime.scheduler import GridScheduler
from repro.runtime.store import as_store
from repro.runtime.sweep import CRASH_AFTER_ENV

CFG = MeasurementConfig(backend="analytic")
PARTS = [2, 4]


@pytest.fixture(scope="module")
def envelope():
    """One executed cell's envelope (module-scoped: it is deterministic)."""
    return run_spec("b_eff", "t3e", 2, CFG).envelope()


@pytest.fixture(scope="module")
def fingerprint():
    return cell_fingerprint("b_eff", "t3e", 2, CFG)


class TestRoundTrip:
    def test_put_get_is_byte_identical(self, tmp_path, envelope, fingerprint):
        store = RunStore(tmp_path / "store")
        path = store.put(fingerprint, envelope)
        assert path.exists()
        entry = store.get_entry(fingerprint)
        assert entry is not None
        assert entry.text == canonical_envelope_text(envelope)
        assert canonical_envelope_text(entry.envelope) == entry.text
        assert store.stats.puts == 1 and store.stats.hits == 1

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1
        assert len(store) == 0

    def test_keys_and_contains(self, tmp_path, envelope, fingerprint):
        store = RunStore(tmp_path / "store")
        assert fingerprint not in store
        store.put(fingerprint, envelope)
        assert fingerprint in store
        assert store.keys() == [fingerprint]
        assert store.total_bytes() > 0

    def test_limit_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="limit_bytes"):
            RunStore(tmp_path / "store", limit_bytes=0)

    def test_as_store_coerces_paths(self, tmp_path):
        store = as_store(tmp_path / "store")
        assert isinstance(store, RunStore)
        assert as_store(store) is store
        assert as_store(None) is None


class TestCorruption:
    def _store_with_entry(self, tmp_path, envelope, fingerprint):
        store = RunStore(tmp_path / "store")
        store.put(fingerprint, envelope)
        return store

    def test_truncated_entry_is_quarantined(self, tmp_path, envelope, fingerprint):
        store = self._store_with_entry(tmp_path, envelope, fingerprint)
        path = store.path_for(fingerprint)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(fingerprint) is None
        assert not path.exists()
        assert store.stats.quarantined == 1 and store.stats.misses == 1
        quarantined = list(store.quarantine_dir.glob("*.json"))
        assert any(p.name == path.name for p in quarantined)

    def test_bitrot_fails_the_digest(self, tmp_path, envelope, fingerprint):
        store = self._store_with_entry(tmp_path, envelope, fingerprint)
        path = store.path_for(fingerprint)
        record = json.loads(path.read_text())
        record["envelope"] = record["envelope"].replace("b_eff", "b_oops", 1)
        path.write_text(json.dumps(record))
        assert store.get(fingerprint) is None
        assert store.stats.quarantined == 1
        # the reason sidecar names the failure
        reasons = list(store.quarantine_dir.glob("*.reason.json"))
        assert reasons and "digest" in reasons[0].read_text()

    def test_foreign_entry_under_wrong_key(self, tmp_path, envelope, fingerprint):
        store = self._store_with_entry(tmp_path, envelope, fingerprint)
        other = "f" * 64
        target = store.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.path_for(fingerprint).read_text())
        assert store.get(other) is None
        assert store.stats.quarantined == 1

    def test_wrong_schema_is_never_served(self, tmp_path, envelope, fingerprint):
        store = self._store_with_entry(tmp_path, envelope, fingerprint)
        path = store.path_for(fingerprint)
        record = json.loads(path.read_text())
        record["schema"] = 99
        path.write_text(json.dumps(record))
        assert store.get(fingerprint) is None

    def test_corruption_is_transparently_reexecuted(self, tmp_path):
        """A corrupt entry behaves as a miss: the sweep re-simulates."""
        store = RunStore(tmp_path / "store")
        clean = run_beff_sweep("t3e", PARTS, CFG, store=store)
        assert clean.fresh == len(PARTS)
        # corrupt one cell, then re-run: exactly that cell re-executes
        fp = cell_fingerprint("b_eff", "t3e", 2, CFG)
        store.path_for(fp).write_text("{not json")
        again = run_beff_sweep("t3e", PARTS, CFG, store=store)
        assert again.fresh == 1 and again.cached == len(PARTS) - 1
        assert again.partition_values() == clean.partition_values()
        assert store.stats.quarantined == 1
        # the re-execution healed the store
        healed = run_beff_sweep("t3e", PARTS, CFG, store=store)
        assert healed.fresh == 0 and healed.cached == len(PARTS)


class TestEviction:
    def test_lru_evicts_least_recently_served(self, tmp_path, envelope):
        keys = [format(i, "064x") for i in range(3)]
        store = RunStore(tmp_path / "store")
        for key in keys:
            store.put(key, envelope)
        size = store.total_bytes() // 3
        # serve keys[0] so keys[1] becomes the least recently used
        assert store.get(keys[0]) is not None
        evicted = store.compact(limit_bytes=2 * size)
        assert evicted == 1
        assert keys[1] not in store
        assert keys[0] in store and keys[2] in store
        assert store.stats.evictions == 1

    def test_put_compacts_under_limit(self, tmp_path, envelope):
        store = RunStore(tmp_path / "store", limit_bytes=1)
        store.put("a" * 64, envelope)
        store.put("b" * 64, envelope)
        # the cap is below one entry, so at most one survives compaction
        assert len(store) <= 1

    def test_eviction_never_tears_a_read(self, tmp_path, envelope):
        """Readers racing eviction get the full entry or a clean miss.

        One thread hammers ``get`` while another alternates put and
        compact-to-zero on the same key.  Every successful read must
        verify (byte-equal to the canonical text); a miss is fine; an
        exception or a partial payload is the failure this test exists
        to catch.
        """
        store = RunStore(tmp_path / "store")
        key = "c" * 64
        expected = canonical_envelope_text(envelope)
        failures: list[str] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                entry = store.get_entry(key)
                if entry is not None and entry.text != expected:
                    failures.append("partial entry served")

        def churner():
            for _ in range(200):
                store.put(key, envelope)
                store.compact(limit_bytes=1)
            stop.set()

        threads = [threading.Thread(target=reader), threading.Thread(target=churner)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        # nothing was quarantined: every read was complete or a miss
        assert store.stats.quarantined == 0


class TestConcurrentSubmitters:
    def test_n_submitters_one_execution_same_object(self, tmp_path):
        """N concurrent identical specs execute once and share the result."""
        spec = run_spec("b_eff", "t3e", 2, CFG)
        started = threading.Barrier(8)
        sched = GridScheduler(store=tmp_path / "store")
        results = []

        def submit():
            started.wait()
            results.append(sched.result(spec))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sched.executions == 1
        assert len(results) == 8
        first = results[0]
        assert all(r is first for r in results)

    def test_counted_runner_proves_single_execution(self, tmp_path):
        """With an injected runner the execution count is exact."""
        spec = run_spec("b_eff", "t3e", 2, CFG)
        real = spec.envelope()
        calls = []
        gate = threading.Event()

        def slow_runner(s):
            calls.append(s.fingerprint())
            gate.wait(timeout=5)
            return real

        sched = GridScheduler(runner=slow_runner)
        futures = []

        def submit():
            futures.append(sched.submit(spec))

        threads = [threading.Thread(target=submit) for _ in range(5)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert len({id(f) for f in futures}) == 1
        assert futures[0].result() is real

    def test_store_hit_skips_execution(self, tmp_path):
        spec = run_spec("b_eff", "t3e", 2, CFG)
        store = RunStore(tmp_path / "store")
        store.put(spec.fingerprint(), spec.envelope())
        sched = GridScheduler(store=store)
        out = sched.result(spec)
        assert sched.executions == 0
        assert canonical_envelope_text(out) == canonical_envelope_text(spec.envelope())

    def test_failed_execution_does_not_poison_later_submitters(self):
        spec = run_spec("b_eff", "t3e", 2, CFG)
        real = spec.envelope()
        attempts = []

        def flaky(s):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return real

        sched = GridScheduler(runner=flaky)
        with pytest.raises(RuntimeError, match="transient"):
            sched.result(spec)
        assert sched.result(spec) is real
        assert sched.executions == 2


class TestSweepComposition:
    def test_warm_sweep_is_byte_identical(self, tmp_path):
        store = RunStore(tmp_path / "store")
        jdir_cold = tmp_path / "cold"
        jdir_warm = tmp_path / "warm"
        cold = run_beff_sweep("t3e", PARTS, CFG, journal=jdir_cold, store=store)
        warm = run_beff_sweep("t3e", PARTS, CFG, journal=jdir_warm, store=store)
        assert cold.fresh == len(PARTS) and cold.cached == 0
        assert warm.fresh == 0 and warm.cached == len(PARTS)
        for n in PARTS:
            cold_bytes = (jdir_cold / f"partition_{n}.json").read_bytes()
            warm_bytes = (jdir_warm / f"partition_{n}.json").read_bytes()
            assert cold_bytes == warm_bytes

    def test_crash_resume_with_warm_cache_bit_identical(self, tmp_path, monkeypatch):
        """Kill mid-sweep, resume with a warm store: still bit-identical."""
        baseline = run_beff_sweep("t3e", PARTS, CFG)
        store = RunStore(tmp_path / "store")
        # warm exactly one cell so the crashed run mixes cache and fresh
        warm_spec = run_spec("b_eff", "t3e", 2, CFG)
        store.put(warm_spec.fingerprint(), warm_spec.envelope())
        jdir = tmp_path / "journal"
        monkeypatch.setenv(CRASH_AFTER_ENV, "1")
        with pytest.raises(RuntimeError, match="injected sweep crash"):
            run_beff_sweep(
                "t3e", [2, 4, 8], CFG, journal=jdir, store=store
            )
        monkeypatch.delenv(CRASH_AFTER_ENV)
        # the cache-served cell and the first fresh cell are journaled
        assert sorted(p.name for p in jdir.glob("partition_*.json")) == [
            "partition_2.json",
            "partition_4.json",
        ]
        resumed = run_beff_sweep(
            "t3e", PARTS, CFG, journal=jdir, resume=True, store=store
        )
        assert resumed.partition_values() == baseline.partition_values()
        assert resumed.best_b_eff == baseline.best_b_eff
        assert resumed.fresh == 0  # everything replayed or cache-served

    def test_cache_served_cells_are_journaled(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run_beff_sweep("t3e", PARTS, CFG, store=store)
        jdir = tmp_path / "journal"
        warm = run_beff_sweep("t3e", PARTS, CFG, journal=jdir, store=store)
        assert warm.fresh == 0
        assert sorted(p.name for p in jdir.glob("partition_*.json")) == [
            f"partition_{n}.json" for n in PARTS
        ]

    def test_manifest_pins_cell_fingerprints(self, tmp_path):
        jdir = tmp_path / "journal"
        run_beff_sweep("t3e", PARTS, CFG, journal=jdir)
        manifest = json.loads((jdir / "manifest.json").read_text())
        assert manifest["schema"] == 2
        assert manifest["cells"] == {
            str(n): cell_fingerprint("b_eff", "t3e", n, CFG) for n in PARTS
        }
