"""Tests for the torus topology and its routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import FlowNetwork, Simulator
from repro.topology import Torus
from repro.topology.torus import balanced_dims


def make(dims, link_bw=100.0, nic_bw=None):
    sim = Simulator()
    net = FlowNetwork(sim)
    topo = Torus(dims, link_bw, nic_bw)
    topo.attach(net)
    return sim, net, topo


class TestCoords:
    def test_roundtrip(self):
        _, _, topo = make((2, 3, 4))
        for node in range(24):
            assert topo.node_at(topo.coords(node)) == node

    def test_row_major_order(self):
        _, _, topo = make((2, 3, 4))
        assert topo.coords(0) == (0, 0, 0)
        assert topo.coords(1) == (0, 0, 1)
        assert topo.coords(4) == (0, 1, 0)
        assert topo.coords(12) == (1, 0, 0)

    def test_bad_coords_rejected(self):
        _, _, topo = make((2, 2))
        with pytest.raises(ValueError):
            topo.node_at((2, 0))
        with pytest.raises(ValueError):
            topo.node_at((0, 0, 0))


class TestRouting:
    def test_self_route_empty(self):
        _, _, topo = make((4,))
        r = topo.route(2, 2)
        assert r.links == ()
        assert r.hops == 0
        assert r.intra_node

    def test_neighbor_is_one_hop(self):
        _, _, topo = make((4, 4))
        r = topo.route(0, 1)
        assert r.hops == 1
        assert not r.intra_node
        # tx + 1 fabric + rx
        assert len(r.links) == 3

    def test_wraparound_shortest_path(self):
        _, _, topo = make((8,))
        # 0 -> 7 should wrap backwards: 1 hop, not 7.
        assert topo.route(0, 7).hops == 1

    def test_hops_match_distance(self):
        _, _, topo = make((3, 4))
        for s in range(12):
            for d in range(12):
                assert topo.route(s, d).hops == topo.distance(s, d)

    def test_route_before_attach_fails(self):
        topo = Torus((4,), 10.0)
        with pytest.raises(RuntimeError):
            topo.route(0, 1)

    def test_out_of_range_rejected(self):
        _, _, topo = make((4,))
        with pytest.raises(IndexError):
            topo.route(0, 4)

    def test_dim_of_extent_one_never_routed(self):
        _, _, topo = make((1, 4))
        # only the extent-4 dimension produces fabric links
        assert all(topo.route(s, d).hops <= 2 for s in range(4) for d in range(4))

    def test_opposite_directions_use_distinct_links(self):
        _, _, topo = make((4,))
        fwd = topo.route(0, 1).links[1]
        bwd = topo.route(1, 0).links[1]
        assert fwd != bwd

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 23), st.integers(0, 23))
    def test_route_is_valid_chain(self, src, dst):
        _, net, topo = make((2, 3, 4))
        r = topo.route(src, dst)
        for link_id in r.links:
            net.link(link_id)  # raises if unknown

    def test_ring_neighbors_one_hop_in_1d(self):
        _, _, topo = make((8,))
        for i in range(8):
            assert topo.route(i, (i + 1) % 8).hops == 1


class TestContentionThroughTorus:
    def test_two_messages_share_a_middle_link(self):
        # 1-D torus of 5: route 0->2 and 1->3 both cross link 1->2.
        sim, net, topo = make((5,), link_bw=10.0)
        from repro.sim import Process

        finish = {}

        def send(tag, src, dst, nbytes):
            ev = net.start_flow(list(topo.route(src, dst).links), nbytes)
            yield ev
            finish[tag] = sim.now

        Process(sim, send("a", 0, 2, 100.0))
        Process(sim, send("b", 1, 3, 100.0))
        sim.run_to_completion()
        # shared link 1->2 at 10 B/s split two ways -> 20 s each
        assert finish["a"] == pytest.approx(20.0)
        assert finish["b"] == pytest.approx(20.0)

    def test_disjoint_ring_neighbors_full_speed(self):
        sim, net, topo = make((4,), link_bw=10.0)
        from repro.sim import Process

        finish = {}

        def send(tag, src, dst, nbytes):
            ev = net.start_flow(list(topo.route(src, dst).links), nbytes)
            yield ev
            finish[tag] = sim.now

        for i in range(4):
            Process(sim, send(i, i, (i + 1) % 4, 100.0))
        sim.run_to_completion()
        for i in range(4):
            assert finish[i] == pytest.approx(10.0)


class TestMeshVariant:
    def make_mesh(self, dims):
        sim = Simulator()
        net = FlowNetwork(sim)
        topo = Torus(dims, 100.0, periodic=False)
        topo.attach(net)
        return topo

    def test_no_wraparound(self):
        topo = self.make_mesh((8,))
        assert topo.route(0, 7).hops == 7  # torus would take 1

    def test_distance_unwrapped(self):
        topo = self.make_mesh((8,))
        assert topo.distance(0, 7) == 7
        assert topo.distance(3, 5) == 2

    def test_hops_match_distance(self):
        topo = self.make_mesh((3, 3))
        for s in range(9):
            for d in range(9):
                assert topo.route(s, d).hops == topo.distance(s, d)

    def test_mesh_ring_ends_pay_full_path(self):
        # a ring over mesh ranks: the 7->0 closing message crosses the
        # whole machine — contention a torus avoids
        topo = self.make_mesh((8,))
        assert topo.route(7, 0).hops == 7
        assert topo.route(6, 7).hops == 1


class TestBalancedDims:
    @pytest.mark.parametrize(
        "n,ndims,expected",
        [
            (8, 3, (2, 2, 2)),
            (24, 3, (4, 3, 2)),
            (512, 3, (8, 8, 8)),
            (16, 2, (4, 4)),
            (7, 2, (7, 1)),
            (1, 3, (1, 1, 1)),
            (64, 3, (4, 4, 4)),
        ],
    )
    def test_factorizations(self, n, ndims, expected):
        assert balanced_dims(n, ndims) == expected

    @given(st.integers(1, 2000), st.integers(1, 4))
    def test_product_preserved(self, n, ndims):
        import math

        assert math.prod(balanced_dims(n, ndims)) == n

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            balanced_dims(0)
        with pytest.raises(ValueError):
            balanced_dims(4, 0)
