"""The vectorized max-min kernel vs its Python oracles: bit-identity.

:mod:`repro.sim.kernel` replaces two scalar solvers on the hot paths —
:func:`repro.sim.fluid.maxmin_allocate` (``tie_counts="live"``) and
``FlowNetwork._solve_component``'s in-place variant
(``tie_counts="frozen"``) — and the whole design rests on the
replacement being ``float.hex``-exact, not approximately equal.  These
properties drive randomized capacities and route structures (empty
routes, singleton links, duplicate links within a route, degenerate
equal-share ties) through both implementations and require identical
bits, including under a shuffled event-tie order for the full
FlowNetwork dispatch.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beff.analytic import _capped_maxmin, _capped_maxmin_inc
from repro.devtools.sanitizer import sanitized
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.sim.fluid import maxmin_allocate
from repro.sim.kernel import RouteIncidence, maxmin_allocate_vec
from repro.topology import Torus
from repro.util import MB


def _hex(values):
    return ["inf" if math.isinf(v) else float(v).hex() for v in values]


def _solve_component_oracle(capacities, routes):
    """Transliteration of ``FlowNetwork._solve_component``'s scalar loop
    (frozen-count saturation scan) over flow indices 0..n-1."""
    residual: dict[int, float] = {}
    counts: dict[int, int] = {}
    members: dict[int, dict[int, None]] = {}
    for fid, route in enumerate(routes):
        for link_id in route:
            if link_id in residual:
                counts[link_id] += 1
            else:
                residual[link_id] = capacities[link_id]
                counts[link_id] = 1
            members.setdefault(link_id, {})[fid] = None
    rates: dict[int, float] = {}
    unfixed = dict.fromkeys(range(len(routes)))
    while unfixed:
        bottleneck = math.inf
        for link_id, count in counts.items():
            if count == 0:
                continue
            share = residual[link_id] / count
            if share < bottleneck:
                bottleneck = share
        if math.isinf(bottleneck):
            for fid in unfixed:
                rates[fid] = math.inf
            break
        tol = bottleneck * (1.0 + 1e-12)
        newly_fixed = []
        for link_id, count in counts.items():
            if count == 0:
                continue
            if residual[link_id] / count <= tol:
                for fid in members[link_id]:
                    if fid in unfixed:
                        newly_fixed.append(fid)
                        del unfixed[fid]
        for fid in newly_fixed:
            rates[fid] = bottleneck
            for link_id in routes[fid]:
                residual[link_id] = max(0.0, residual[link_id] - bottleneck)
                counts[link_id] -= 1
    return [rates[f] for f in range(len(routes))]


# tie-heavy capacity pools: identical values force equal shares, the
# regime where the two oracles' scan orders actually matter
_CAPACITY = st.one_of(
    st.sampled_from([0.001, 0.002, 1.0]),
    st.floats(min_value=1e-4, max_value=10.0, allow_nan=False),
)


@st.composite
def _problems(draw, min_flows=0, max_flows=14):
    n_links = draw(st.integers(min_value=1, max_value=12))
    capacities = {
        link: draw(_CAPACITY) for link in range(n_links)
    }
    routes = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=0,
                max_size=4,
            ).map(tuple),
            min_size=min_flows,
            max_size=max_flows,
        )
    )
    return capacities, routes


class TestLiveSemantics:
    @settings(max_examples=200, deadline=None)
    @given(problem=_problems())
    def test_matches_maxmin_allocate(self, problem):
        capacities, routes = problem
        ref = maxmin_allocate(dict(capacities), routes)
        vec = maxmin_allocate_vec(capacities, routes)
        assert _hex(vec) == _hex(ref)

    @settings(max_examples=100, deadline=None)
    @given(problem=_problems(min_flows=1), data=st.data())
    def test_active_subset_matches_oracle_on_sublist(self, problem, data):
        capacities, routes = problem
        active = np.asarray(
            data.draw(
                st.lists(
                    st.booleans(), min_size=len(routes), max_size=len(routes)
                )
            )
        )
        sub = [routes[i] for i in range(len(routes)) if active[i]]
        ref = maxmin_allocate(dict(capacities), sub)
        incidence = RouteIncidence(routes)
        caps = np.asarray(
            [capacities[link] for link in incidence.link_ids], dtype=np.float64
        )
        vec = incidence.solve(caps, active=active)
        picked = [float(vec[i]) for i in range(len(routes)) if active[i]]
        assert _hex(picked) == _hex(ref)

    def test_empty_routes_get_infinite_rate(self):
        rates = maxmin_allocate_vec({0: 1.0}, [(), (0,), ()])
        assert math.isinf(rates[0]) and math.isinf(rates[2])
        assert rates[1] == 1.0

    def test_singleton_link_shared_equally(self):
        rates = maxmin_allocate_vec({7: 3.0}, [(7,), (7,), (7,)])
        assert _hex(rates) == _hex([1.0, 1.0, 1.0])

    def test_no_flows(self):
        assert maxmin_allocate_vec({0: 1.0}, []) == []


class TestFrozenSemantics:
    @settings(max_examples=200, deadline=None)
    @given(problem=_problems(min_flows=1))
    def test_matches_solve_component(self, problem):
        capacities, routes = problem
        ref = _solve_component_oracle(capacities, routes)
        incidence = RouteIncidence(routes)
        caps = np.asarray(
            [capacities[link] for link in incidence.link_ids], dtype=np.float64
        )
        vec = incidence.solve(caps, tie_counts="frozen").tolist()
        assert _hex(vec) == _hex(ref)

    def test_unknown_tie_counts_rejected(self):
        incidence = RouteIncidence([(0,)])
        with pytest.raises(ValueError, match="tie_counts"):
            incidence.solve(np.asarray([1.0]), tie_counts="eager")


class TestCappedMaxminPlanPath:
    @settings(max_examples=100, deadline=None)
    @given(problem=_problems(min_flows=1), data=st.data())
    def test_incidence_variant_matches_reference(self, problem, data):
        capacities, routes = problem
        routes = [r for r in routes if r] or [(0,)]
        caps = [
            data.draw(
                st.one_of(st.none(), st.floats(min_value=1e-4, max_value=5.0))
            )
            for _ in routes
        ]
        ref = _capped_maxmin(dict(capacities), routes, caps)
        incidence = RouteIncidence(routes)
        cap_arr = np.asarray(
            [capacities[link] for link in incidence.link_ids], dtype=np.float64
        )
        vec = _capped_maxmin_inc(incidence, cap_arr, caps)
        assert _hex(vec) == _hex(ref)


class TestIncidenceStructure:
    def test_duplicate_pair_detection(self):
        assert RouteIncidence([(0, 0)]).has_duplicate_pairs
        assert not RouteIncidence([(0, 1), (1, 0)]).has_duplicate_pairs

    def test_link_totals_matches_python_sum(self):
        routes = [(0, 1), (1, 2), (0, 2), (2,)]
        incidence = RouteIncidence(routes)
        per_flow = np.asarray([0.1, 0.2, 0.3, 0.4])
        totals = incidence.link_totals(per_flow)
        for col, link in enumerate(incidence.link_ids):
            expected = 0.0
            for fid, route in enumerate(routes):
                if link in route:
                    expected += float(per_flow[fid])
            assert float(totals[col]).hex() == expected.hex()

    def test_duplicate_links_counted_with_multiplicity(self):
        # a flow crossing the same link twice halves its share there,
        # exactly as the oracle counts it
        ref = maxmin_allocate({0: 1.0}, [(0, 0), (0,)])
        vec = maxmin_allocate_vec({0: 1.0}, [(0, 0), (0,)])
        assert _hex(vec) == _hex(ref)


class TestFlowNetworkDispatch:
    """The incremental engine's vectorized component dispatch, driven
    through a real fabric — including under a shuffled tie order."""

    def _round_bytes(self, tie_shuffle_seed=None):
        from repro.beff.patterns import make_patterns
        from repro.mpi.comm import World
        from repro.sim.randomness import RandomStreams

        with sanitized(record=False, tie_shuffle_seed=tie_shuffle_seed):
            sim = Simulator()
            fabric = Fabric(
                sim, Torus((4, 4, 4), link_bw=300 * MB), NetParams(latency=10e-6)
            )
            world = World(fabric)
            pattern = make_patterns(64, RandomStreams())[-1]

            def program(comm):
                from repro.beff.methods import step

                yield from comm.barrier()
                for _ in range(2):
                    yield from step("nonblocking", comm, pattern, 64 * 1024)

            world.run(program)
            return (
                float(fabric.sim.now).hex(),
                float(fabric.flows.bytes_completed).hex(),
                {k: v.hex() for k, v in sorted(fabric.flows.link_bytes.items())},
            )

    def test_vectorized_round_is_tie_order_invariant(self):
        baseline = self._round_bytes()
        for seed in (1, 7):
            assert self._round_bytes(tie_shuffle_seed=seed) == baseline
