"""Graceful degradation: budgets, partial aggregation, never hanging.

A resilient benchmark run must always *terminate with a verdict*: an
over-budget pattern is skipped and flagged, an unrecoverable fault
(dead PFS server, exhausted event budget) yields an ``invalid``
partial result carrying the cause — never a hang, never a silent
wrong number.
"""

import math

import pytest

from repro.beff import MeasurementConfig, run_beff
from repro.beff import analysis as beff_analysis
from repro.beff.measurement import MeasurementRecord
from repro.beffio import BeffIOConfig
from repro.beffio import analysis as io_analysis
from repro.beffio.analysis import ACCESS_METHODS, TypeResult
from repro.faults import VALID, FaultPlan, RunValidity, ServerCrash, merge
from repro.machines import cray_t3e_900
from repro.mpiio.gate import CollectiveGate
from repro.net import Fabric, NetParams
from repro.sim import EventBudgetError, Process, Simulator, Sleep
from repro.topology import Torus
from repro.util import MB

MEM = 512 * MB
FAST = dict(methods=("sendrecv",), max_looplength=1)


def torus_factory(n):
    def make():
        sim = Simulator()
        return Fabric(sim, Torus((n,), link_bw=300 * MB), NetParams(latency=10e-6))

    return make


class TestEventBudget:
    def test_exhaustion_raises_event_budget_error(self):
        sim = Simulator()

        def prog():
            for _ in range(100):
                yield Sleep(1.0)

        Process(sim, prog())
        with pytest.raises(EventBudgetError, match="budget"):
            sim.run_to_completion(max_events=5)

    def test_sufficient_budget_completes_normally(self):
        sim = Simulator()
        ticks = []

        def prog():
            for _ in range(3):
                yield Sleep(1.0)
            ticks.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion(max_events=1000)
        assert ticks == [3.0]


class TestBeffDegradation:
    def test_tiny_pattern_budget_invalidates(self):
        cfg = MeasurementConfig(**FAST, pattern_budget=1e-12)
        res = run_beff(torus_factory(4), MEM, cfg)
        assert res.validity.state == "invalid"
        assert not res.validity.ok
        assert res.validity.skipped  # names the abandoned patterns
        assert math.isnan(res.b_eff)
        assert "skipped" in res.validity.describe()

    def test_event_budget_reports_invalid_with_cause(self):
        cfg = MeasurementConfig(**FAST, event_budget=500)
        res = run_beff(torus_factory(4), MEM, cfg)
        assert res.validity.state == "invalid"
        assert "EventBudgetError" in res.validity.reason
        assert math.isnan(res.b_eff)

    def test_clean_run_is_valid(self):
        res = run_beff(torus_factory(4), MEM, MeasurementConfig(**FAST))
        assert res.validity is VALID


class TestBeffIODegradation:
    def test_dead_server_reports_invalid_not_hang(self):
        # an unrecoverable server crash blocks every client touching it;
        # the resilient runner must convert the deadlock into an
        # invalid partial result (and do so promptly)
        spec = cray_t3e_900()
        plan = FaultPlan(events=(ServerCrash(0, 0.1, math.inf),), seed=1)
        cfg = BeffIOConfig(T=0.8, pattern_types=(0,), faults=plan)
        res = spec.run_beffio(4, cfg)
        assert res.validity.state == "invalid"
        assert math.isnan(res.b_eff_io)
        assert "DeadlockError" in res.validity.reason

    def test_recovered_server_crash_stays_valid(self):
        spec = cray_t3e_900()
        plan = FaultPlan(events=(ServerCrash(0, 0.1, 0.3),), seed=1)
        cfg = BeffIOConfig(T=0.8, pattern_types=(0,), faults=plan)
        res = spec.run_beffio(4, cfg)
        assert res.validity.ok
        assert res.b_eff_io > 0

    def test_pattern_budget_flags_degraded(self):
        spec = cray_t3e_900()
        cfg = BeffIOConfig(T=0.8, pattern_types=(0,), pattern_budget=1e-6)
        res = spec.run_beffio(4, cfg)
        assert res.validity.state == "degraded"
        assert res.validity.flagged
        assert any(r.over_budget for r in res.pattern_runs)
        assert not math.isnan(res.b_eff_io)  # flagged, but still computable

    def test_event_budget_reports_invalid_with_cause(self):
        spec = cray_t3e_900()
        cfg = BeffIOConfig(T=0.8, pattern_types=(0,), event_budget=2000)
        res = spec.run_beffio(4, cfg)
        assert res.validity.state == "invalid"
        assert "EventBudgetError" in res.validity.reason
        assert math.isnan(res.b_eff_io)


def rec(pattern, kind, size, bw):
    return MeasurementRecord(
        pattern=pattern, kind=kind, size=size, method="sendrecv",
        repetition=0, looplength=1, time=1.0, bandwidth=bw,
    )


class TestBeffAggregatePartial:
    EXPECTED = {"ring-a": "ring", "rand-b": "random"}

    def complete_records(self):
        return [
            rec("ring-a", "ring", 1, 100.0), rec("ring-a", "ring", 2, 200.0),
            rec("rand-b", "random", 1, 50.0), rec("rand-b", "random", 2, 80.0),
        ]

    def test_complete_set_is_valid_and_matches_aggregate(self):
        records = self.complete_records()
        agg, validity = beff_analysis.aggregate_partial(records, 2, 2, self.EXPECTED)
        full = beff_analysis.aggregate(records, 2, 2)
        assert validity is VALID
        assert agg == full

    def test_missing_pattern_invalidates_but_keeps_partials(self):
        records = self.complete_records()[:2]  # rand-b never ran
        agg, validity = beff_analysis.aggregate_partial(
            records, 2, 2, self.EXPECTED, skipped=("rand-b",)
        )
        assert validity.state == "invalid"
        assert "rand-b" in validity.skipped
        assert math.isnan(agg["b_eff"])
        assert agg["per_pattern"] == {"ring-a": 150.0}

    def test_half_measured_pattern_counts_as_skipped(self):
        records = self.complete_records()[:3]  # rand-b missing one size
        agg, validity = beff_analysis.aggregate_partial(records, 2, 2, self.EXPECTED)
        assert validity.state == "invalid"
        assert "rand-b" in validity.skipped
        assert "rand-b" not in agg["per_pattern"]

    def test_flagged_complete_set_is_degraded_with_exact_values(self):
        records = self.complete_records()
        agg, validity = beff_analysis.aggregate_partial(
            records, 2, 2, self.EXPECTED, flagged=("ring-a",)
        )
        assert validity.state == "degraded"
        assert agg == beff_analysis.aggregate(records, 2, 2)

    def test_failure_reason_is_carried(self):
        agg, validity = beff_analysis.aggregate_partial(
            self.complete_records(), 2, 2, self.EXPECTED, failure="EventBudgetError: x"
        )
        assert validity.state == "degraded"
        assert validity.reason == "EventBudgetError: x"


def tr(method, pt, nbytes=100, time=1.0):
    return TypeResult(method=method, pattern_type=pt, nbytes=nbytes, time=time, reps=1)


class TestBeffIOAggregatePartial:
    EXPECTED = [(m, 0) for m in ACCESS_METHODS]

    def test_complete_set_is_valid(self):
        results = [tr(m, 0) for m in ACCESS_METHODS]
        mv, beffio, validity = io_analysis.aggregate_partial(results, self.EXPECTED)
        assert validity is VALID
        assert beffio == pytest.approx(100.0)

    def test_missing_method_type_pair_invalidates(self):
        results = [tr("write", 0), tr("rewrite", 0)]  # read never ran
        mv, beffio, validity = io_analysis.aggregate_partial(results, self.EXPECTED)
        assert validity.state == "invalid"
        assert any("read" in s for s in validity.skipped)
        assert math.isnan(mv["read"])
        assert math.isnan(beffio)
        # surviving methods keep their exact values
        assert mv["write"] == pytest.approx(100.0)

    def test_flagged_complete_set_is_degraded(self):
        results = [tr(m, 0) for m in ACCESS_METHODS]
        mv, beffio, validity = io_analysis.aggregate_partial(
            results, self.EXPECTED, flagged=("write/t0/p1",)
        )
        assert validity.state == "degraded"
        assert beffio == pytest.approx(100.0)


class TestValidityMerge:
    def test_empty_and_all_valid_merge_to_valid(self):
        assert merge([]) is VALID
        assert merge([VALID, VALID]) is VALID

    def test_worst_state_wins(self):
        degraded = RunValidity("degraded", flagged=("x",))
        invalid = RunValidity("invalid", skipped=("y",), reason="boom")
        assert merge([VALID, degraded]).state == "degraded"
        merged = merge([degraded, invalid, VALID])
        assert merged.state == "invalid"
        assert "x" in merged.flagged and "y" in merged.skipped
        assert "boom" in merged.reason

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            RunValidity("bogus")


class TestGateCrashes:
    """A rank or gate action dying must surface loudly, never deadlock."""

    def test_action_exception_propagates(self):
        sim = Simulator()
        gate = CollectiveGate(sim, 2, name="g")

        def action(contribs):
            yield Sleep(0.1)
            raise RuntimeError("action crashed")

        def rank(r):
            yield from gate.arrive(r, r, action)

        Process(sim, rank(0))
        Process(sim, rank(1))
        with pytest.raises(RuntimeError, match="action crashed"):
            sim.run_to_completion()

    def test_rank_crash_before_gate_raises_not_hangs(self):
        sim = Simulator()
        gate = CollectiveGate(sim, 2, name="g")

        def action(contribs):
            yield Sleep(0.1)
            return sum(contribs.values())

        def rank(r):
            yield Sleep(0.05)
            if r == 1:
                raise RuntimeError("rank died before the collective")
            yield from gate.arrive(r, r, action)

        Process(sim, rank(0))
        Process(sim, rank(1))
        with pytest.raises(RuntimeError, match="rank died"):
            sim.run_to_completion()
