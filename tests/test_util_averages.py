"""Unit and property tests for the averaging rules of b_eff / b_eff_io."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import geometric_mean, logavg, weighted_average, weighted_logavg

positive = st.floats(min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False)


class TestLogavg:
    def test_single_value(self):
        assert logavg([5.0]) == pytest.approx(5.0)

    def test_two_values_is_sqrt_of_product(self):
        assert logavg([1.0, 100.0]) == pytest.approx(10.0)

    def test_paper_two_step_structure(self):
        # b_eff = logavg(logavg(rings), logavg(randoms)): rings and
        # randoms are weighted equally regardless of their counts.
        rings = [10.0, 10.0, 10.0, 10.0]
        randoms = [40.0]
        combined = logavg([logavg(rings), logavg(randoms)])
        assert combined == pytest.approx(20.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            logavg([])

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            logavg([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            logavg([1.0, -2.0])

    def test_geometric_mean_alias(self):
        assert geometric_mean([2.0, 8.0]) == logavg([2.0, 8.0])

    @given(st.lists(positive, min_size=1, max_size=30))
    def test_between_min_and_max(self, values):
        avg = logavg(values)
        assert min(values) * (1 - 1e-9) <= avg <= max(values) * (1 + 1e-9)

    @given(st.lists(positive, min_size=1, max_size=30), positive)
    def test_scale_invariance(self, values, scale):
        # logavg(c * v) == c * logavg(v): the average is unit-consistent.
        scaled = logavg([scale * v for v in values])
        assert scaled == pytest.approx(scale * logavg(values), rel=1e-9)

    @given(st.lists(positive, min_size=1, max_size=30))
    def test_at_most_arithmetic_mean(self, values):
        # AM-GM inequality: a sanity invariant of the definition.
        assert logavg(values) <= sum(values) / len(values) * (1 + 1e-9)


class TestWeightedLogavg:
    def test_equal_weights_match_logavg(self):
        vals = [2.0, 4.0, 8.0]
        assert weighted_logavg(vals, [1, 1, 1]) == pytest.approx(logavg(vals))

    def test_zero_weight_ignores_value(self):
        assert weighted_logavg([5.0, 123.0], [1.0, 0.0]) == pytest.approx(5.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_logavg([1.0], [1.0, 2.0])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            weighted_logavg([1.0, 2.0], [1.0, -1.0])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_logavg([1.0], [0.0])


class TestWeightedAverage:
    def test_beff_io_access_method_weights(self):
        # 25 % write, 25 % rewrite, 50 % read (paper Sec. 5.1).
        write, rewrite, read = 100.0, 120.0, 200.0
        expected = 0.25 * write + 0.25 * rewrite + 0.5 * read
        assert weighted_average([write, rewrite, read], [1, 1, 2]) == pytest.approx(expected)

    def test_double_weighting_of_scatter_type(self):
        # type 0 double weighted among 5 pattern types -> 6 weight units.
        types = [60.0, 30.0, 30.0, 30.0, 30.0]
        expected = (2 * 60.0 + 30.0 * 4) / 6
        assert weighted_average(types, [2, 1, 1, 1, 1]) == pytest.approx(expected)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_average([], [])

    @given(st.lists(positive, min_size=1, max_size=20))
    def test_uniform_weights_are_arithmetic_mean(self, values):
        avg = weighted_average(values, [1.0] * len(values))
        assert avg == pytest.approx(sum(values) / len(values))

    @given(
        st.lists(
            st.tuples(
                positive,
                # zero weights or sanely-scaled ones; subnormal weights
                # only probe float rounding, not the averaging rule
                st.one_of(st.just(0.0), st.floats(min_value=1e-3, max_value=10.0)),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_bounded_by_extremes(self, pairs):
        values = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        if sum(weights) <= 0:
            weights[0] = 1.0
        avg = weighted_average(values, weights)
        assert min(values) * (1 - 1e-9) <= avg <= max(values) * (1 + 1e-9)

    def test_logavg_leq_weighted_average_same_weights(self):
        values = [1.0, 10.0, 100.0]
        weights = [2.0, 1.0, 1.0]
        assert weighted_logavg(values, weights) <= weighted_average(values, weights)
