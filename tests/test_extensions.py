"""Tests for the paper's future-work extensions we implemented.

* geometric termination for collective loops (Sec. 5.4's proposal);
* random access pattern type 5 (Sec. 6);
* machine-readable JSON export (Sec. 6's SKaMPI/Top-Clusters outlook);
* the 20x-cache disk-residency rule (Sec. 5.4).
"""

import json

import pytest

from repro.beff import MeasurementConfig
from repro.beffio import BeffIOConfig, run_beffio
from repro.beffio.analysis import bytes_per_method, cache_rule
from repro.beffio.patterns import extension_patterns, patterns_of_type
from repro.beffio.scheduler import geometric_timed_loop
from repro.machines import cray_t3e_900
from repro.mpi import World
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.reporting.export import beff_to_dict, beffio_to_dict, to_json
from repro.sim import Simulator, Sleep
from repro.topology import Torus
from repro.util import KB, MB


def env_factory(nprocs=4):
    def make():
        sim = Simulator()
        fabric = Fabric(
            sim, Torus((nprocs,), link_bw=1000 * MB),
            NetParams(latency=5e-6, msg_rate_cap=500 * MB),
        )
        world = World(fabric)
        fs = FileSystem(sim, PFSConfig(
            num_servers=4, stripe_unit=64 * KB, disk_bw=100 * MB,
            ingest_bw=800 * MB, seek_time=2e-3, request_overhead=1e-4,
            disk_block=4 * KB, cache_bytes=256 * MB, client_bw=400 * MB,
            server_net_bw=400 * MB, call_overhead=3e-5,
        ))
        return world, fs

    return make


MEM = 256 * MB


class TestGeometricTermination:
    def test_loop_semantics_match(self):
        # all ranks stop after the same count; at least one rep
        sim = Simulator()
        fabric = Fabric(sim, Torus((4,), link_bw=100 * MB), NetParams(latency=1e-6))
        world = World(fabric)
        reps_seen = {}

        def program(comm):
            def body():
                yield Sleep(0.01)

            reps = yield from geometric_timed_loop(comm, t_end=0.1, body=body)
            reps_seen[comm.rank] = reps

        world.run(program)
        assert len(set(reps_seen.values())) == 1
        assert list(reps_seen.values())[0] >= 1

    def test_max_reps_respected(self):
        sim = Simulator()
        fabric = Fabric(sim, Torus((2,), link_bw=100 * MB), NetParams())
        world = World(fabric)
        got = []

        def program(comm):
            def body():
                yield Sleep(0.001)

            reps = yield from geometric_timed_loop(
                comm, t_end=100.0, body=body, max_reps=7
            )
            got.append(reps)

        world.run(program)
        assert got[0] == 7

    def test_validation(self):
        sim = Simulator()
        fabric = Fabric(sim, Torus((2,), link_bw=MB), NetParams())
        world = World(fabric)

        def program(comm):
            yield from geometric_timed_loop(comm, 1.0, lambda: iter(()), growth=1.0)

        with pytest.raises(ValueError):
            world.run(program)

    def test_geometric_reduces_termination_overhead(self):
        # On a high-latency fabric, per-iteration termination costs a
        # collective round per rep; geometric batching amortizes it and
        # the same time budget completes more small-chunk repetitions.
        def run(termination):
            cfg = BeffIOConfig(T=1.5, pattern_types=(1,), termination=termination)
            return run_beffio(env_factory(4), MEM, cfg)

        per_iter = run("per-iteration")
        geometric = run("geometric")
        # compare the 1 kB shared-collective pattern (No. 13)
        bw = {}
        for label, res in (("per-iteration", per_iter), ("geometric", geometric)):
            for r in res.pattern_table("write"):
                if r.number == 13:
                    bw[label] = r.bandwidth
        assert bw["geometric"] > bw["per-iteration"]


class TestRandomAccessType5:
    def test_extension_patterns_structure(self):
        pats = extension_patterns(MEM)
        assert all(p.pattern_type == 5 for p in pats)
        assert [p.number for p in pats] == list(range(43, 51))
        assert sum(p.U for p in pats) == 10

    def test_run_with_type5(self):
        cfg = BeffIOConfig(T=1.5, pattern_types=(0, 2, 5))
        res = run_beffio(env_factory(4), MEM, cfg)
        types = {t.pattern_type for t in res.type_results}
        assert 5 in types
        assert res.segment_size is not None
        t5_runs = [r for r in res.pattern_runs if r.pattern_type == 5]
        assert len(t5_runs) == 8 * 3  # 8 patterns x 3 methods
        assert all(r.nbytes >= 0 for r in t5_runs)

    def test_random_slower_than_sequential_on_disk(self):
        # with no cache, random 1 MB accesses seek; sequential do not
        def env_small():
            sim = Simulator()
            fabric = Fabric(
                sim, Torus((2,), link_bw=1000 * MB), NetParams(latency=5e-6)
            )
            world = World(fabric)
            fs = FileSystem(sim, PFSConfig(
                num_servers=1, stripe_unit=16 * MB, disk_bw=100 * MB,
                ingest_bw=800 * MB, seek_time=10e-3, request_overhead=1e-4,
                disk_block=4 * KB, cache_bytes=0, client_bw=400 * MB,
                server_net_bw=400 * MB, call_overhead=3e-5,
            ))
            return world, fs

        cfg = BeffIOConfig(T=2.0, pattern_types=(3, 5))
        res = run_beffio(env_small, MEM, cfg)
        seq = res.type_result("write", 3)
        rnd = res.type_result("write", 5)
        assert rnd.bandwidth < seq.bandwidth

    def test_reads_revisit_written_offsets(self):
        cfg = BeffIOConfig(T=1.0, pattern_types=(5,))
        res = run_beffio(env_factory(2), MEM, cfg)
        # reads of the same offset sequence hit cache: read >= write bw
        w = res.type_result("write", 5).bandwidth
        r = res.type_result("read", 5).bandwidth
        assert r > 0.5 * w


class TestJsonExport:
    def test_beff_roundtrip(self):
        spec = cray_t3e_900()
        res = spec.run_beff(
            4, MeasurementConfig(methods=("nonblocking",), backend="analytic")
        )
        text = to_json(res, machine="t3e")
        payload = json.loads(text)
        assert payload["benchmark"] == "b_eff"
        assert payload["machine"] == "t3e"
        assert payload["nprocs"] == 4
        assert payload["b_eff"] == pytest.approx(res.b_eff)
        assert len(payload["records"]) == len(res.records)
        assert payload["records"][0]["pattern"] == res.records[0].pattern

    def test_beffio_roundtrip(self):
        cfg = BeffIOConfig(T=0.8, pattern_types=(0,))
        res = run_beffio(env_factory(2), MEM, cfg)
        payload = json.loads(to_json(res))
        assert payload["benchmark"] == "b_eff_io"
        assert payload["b_eff_io"] == pytest.approx(res.b_eff_io)
        assert len(payload["type_results"]) == 3
        assert payload["pattern_runs"][0]["bandwidth"] >= 0

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_json("not a result")

    def test_dict_helpers(self):
        spec = cray_t3e_900()
        res = spec.run_beff(
            2, MeasurementConfig(methods=("nonblocking",), backend="analytic")
        )
        d = beff_to_dict(res)
        assert d["machine"] is None
        cfg = BeffIOConfig(T=0.6, pattern_types=(0,))
        io_res = run_beffio(env_factory(2), MEM, cfg)
        d2 = beffio_to_dict(io_res, machine="custom")
        assert d2["machine"] == "custom"

    def test_cli_json_flags(self, tmp_path, capsys):
        from repro.cli import main_beff, main_beffio

        out = tmp_path / "beff.json"
        main_beff(["--machine", "t3e", "--procs", "2", "--backend", "analytic",
                   "--methods", "nonblocking", "--json", str(out)])
        assert json.loads(out.read_text())["benchmark"] == "b_eff"

        out2 = tmp_path / "io.json"
        main_beffio(["--machine", "t3e", "--procs", "2", "--T", "0.5",
                     "--types", "0", "--termination", "geometric",
                     "--json", str(out2)])
        assert json.loads(out2.read_text())["benchmark"] == "b_eff_io"


class TestCacheRule:
    def test_rule_applied_per_method(self):
        sizes = {"write": 2000, "rewrite": 500, "read": 2100}
        out = cache_rule(sizes, cache_bytes=100, factor=20)
        assert out == {"write": True, "rewrite": False, "read": True}

    def test_bytes_per_method(self):
        from repro.beffio.analysis import TypeResult

        results = [
            TypeResult("write", 0, 100, 1.0, 1),
            TypeResult("write", 1, 50, 1.0, 1),
            TypeResult("read", 0, 70, 1.0, 1),
        ]
        assert bytes_per_method(results) == {"write": 150, "read": 70}

    def test_validation(self):
        with pytest.raises(ValueError):
            cache_rule({}, cache_bytes=-1)
        with pytest.raises(ValueError):
            cache_rule({}, cache_bytes=1, factor=0)

    def test_end_to_end_cache_rule(self):
        cfg = BeffIOConfig(T=1.0, pattern_types=(0,))
        res = run_beffio(env_factory(2), MEM, cfg)
        sizes = bytes_per_method(res.type_results)
        verdict = cache_rule(sizes, cache_bytes=256 * MB)
        # tiny scaled run cannot satisfy the 20x rule -> flagged
        assert not any(verdict.values())
