"""Tests for reporting formatters and the CLI."""

import pytest

from repro.beff import MeasurementConfig
from repro.beffio import BeffIOConfig, build_patterns
from repro.cli import main_beff, main_beffio
from repro.machines import cray_t3e_900, nec_sx5
from repro.reporting import (
    beff_protocol,
    beffio_pattern_table,
    beffio_summary,
    figure1_rows,
    figure3_series,
    figure5_rows,
    table1,
    table2,
)
from repro.util import MB

FAST = MeasurementConfig(methods=("nonblocking",), max_looplength=1, backend="analytic")
FAST_IO = BeffIOConfig(T=0.8, pattern_types=(0, 2))


@pytest.fixture(scope="module")
def beff_result():
    return cray_t3e_900().run_beff(4, FAST)


@pytest.fixture(scope="module")
def beffio_result():
    return cray_t3e_900().run_beffio(2, FAST_IO)


class TestTable1AndFigure1:
    def test_table1_renders(self, beff_result):
        spec = cray_t3e_900()
        out = table1([(spec, beff_result, 330 * MB)]).render()
        assert "Cray T3E/900" in out
        assert "330" in out
        assert "b_eff" in out

    def test_table1_without_pingpong(self, beff_result):
        out = table1([(cray_t3e_900(), beff_result, None)]).render()
        assert "Cray T3E/900" in out

    def test_figure1_rows(self, beff_result):
        rows = figure1_rows([(cray_t3e_900(), beff_result)])
        assert len(rows) == 1
        name, bf = rows[0]
        assert "(4)" in name
        assert bf > 0


class TestTable2:
    def test_all_rows_rendered(self):
        pats = build_patterns(256 * MB)
        out = table2(pats).render()
        assert ":=l" in out
        assert "1 kB+8" in out
        assert "fill" in out
        assert out.count("\n") >= 44  # 43 rows + header + sep


class TestIOFormatters:
    def test_figure3_series_sorted(self, beffio_result):
        rows = figure3_series([beffio_result])
        assert rows[0][0] == 2
        assert all(v >= 0 for v in rows[0][1:])

    def test_pattern_table(self, beffio_result):
        out = beffio_pattern_table(beffio_result, "write").render()
        assert "MB/s" in out
        assert "chunk (l)" in out

    def test_figure5_rows(self, beffio_result):
        rows = figure5_rows([("Cray T3E/900", beffio_result)])
        assert rows == [("Cray T3E/900", 2, pytest.approx(beffio_result.b_eff_io / MB))]

    def test_beffio_summary(self, beffio_result):
        out = beffio_summary(beffio_result)
        assert "b_eff_io" in out
        assert "write" in out and "read" in out


class TestProtocol:
    def test_protocol_contains_aggregates(self, beff_result):
        out = beff_protocol(beff_result, max_rows=5)
        assert "logavg ring patterns" in out
        assert "b_eff " in out

    def test_protocol_row_cap(self, beff_result):
        short = beff_protocol(beff_result, max_rows=3)
        full = beff_protocol(beff_result)
        assert len(full) > len(short)


class TestCLI:
    def test_beff_list(self, capsys):
        assert main_beff(["--machine", "list"]) == 0
        out = capsys.readouterr().out
        assert "t3e" in out and "sx5" in out

    def test_beff_run(self, capsys):
        code = main_beff(
            ["--machine", "t3e", "--procs", "2", "--backend", "analytic",
             "--methods", "nonblocking"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "b_eff" in out

    def test_beff_detail(self, capsys):
        code = main_beff(
            ["--machine", "sx5", "--procs", "2", "--backend", "analytic",
             "--methods", "nonblocking", "--detail"]
        )
        assert code == 0
        assert "ping-pong" in capsys.readouterr().out

    def test_beffio_run(self, capsys):
        code = main_beffio(
            ["--machine", "t3e", "--procs", "2", "--T", "0.5", "--types", "0,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "b_eff_io" in out

    def test_beffio_pattern_table(self, capsys):
        code = main_beffio(
            ["--machine", "t3e", "--procs", "2", "--T", "0.5", "--types", "0",
             "--pattern-table"]
        )
        assert code == 0
        assert "chunk (l)" in capsys.readouterr().out
