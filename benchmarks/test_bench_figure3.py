"""Fig. 3 — b_eff_io vs number of processes, T3E vs IBM SP.

The paper's central I/O observation: on the T3E the I/O subsystem is
a *global resource* — b_eff_io varies little from 8 to 128 PEs with
its maximum at a mid-size partition — while on the IBM SP the I/O
bandwidth *tracks the number of compute nodes* until the 20 GPFS
servers saturate.

We sweep partitions at simulation scale (T scaled down like the
paper's own pre-release measurements, which also ran "partially
without pattern type 3") and check the growth-rate contrast.
"""

import pytest

from benchmarks._harness import once, record
from repro.beffio import BeffIOConfig
from repro.machines import get_machine
from repro.reporting import figure3_series
from repro.util import MB

CONFIG = BeffIOConfig(T=2.0, pattern_types=(0, 1, 2))
PARTITIONS = (2, 4, 8, 16, 32)


def run_figure3():
    out = {}
    for key in ("t3e", "sp"):
        spec = get_machine(key)
        out[key] = [spec.run_beffio(n, CONFIG) for n in PARTITIONS]
    return out


@pytest.mark.benchmark(group="figure3")
def test_figure3(benchmark):
    sweeps = once(benchmark, run_figure3)

    lines = [f"Fig. 3: b_eff_io vs partition size (T={CONFIG.T} s scaled, "
             f"types {CONFIG.pattern_types})", ""]
    for key, results in sweeps.items():
        name = get_machine(key).name
        lines.append(f"--- {name} ---")
        lines.append("procs    write  rewrite     read  b_eff_io  (MB/s)")
        for procs, w, rw, r, total in figure3_series(results):
            lines.append(f"{procs:5d} {w:8.1f} {rw:8.1f} {r:8.1f} {total:9.1f}")
        best = max(results, key=lambda r: r.b_eff_io)
        lines.append(f"maximum at {best.nprocs} processes\n")
    record("figure3", "\n".join(lines))

    t3e = {r.nprocs: r.b_eff_io for r in sweeps["t3e"]}
    sp = {r.nprocs: r.b_eff_io for r in sweeps["sp"]}

    # both grow from tiny partitions...
    assert t3e[8] > t3e[2]
    assert sp[8] > sp[2]
    # ...but the T3E flattens: its 8->32 growth is well below the SP's
    t3e_growth = t3e[32] / t3e[8]
    sp_growth = sp[32] / sp[8]
    assert t3e_growth < sp_growth, (t3e_growth, sp_growth)
    # the T3E is near its ceiling by 16 processes (global resource)
    assert t3e[32] < t3e[16] * 1.35
    # the SP is still scaling strongly at 32 (servers not saturated)
    assert sp_growth > 1.6
