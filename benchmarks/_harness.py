"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures at
simulation scale, prints it, and archives the text under
``benchmarks/results/`` so the output survives pytest's capture.
``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _write_atomic(path: pathlib.Path, text: str) -> None:
    """temp + ``os.replace`` so an interrupted bench never tears a file."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def record(name: str, text: str) -> None:
    """Print a result block and archive it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    _write_atomic(RESULTS_DIR / f"{name}.txt", text + "\n")


def record_json(name: str, payload: dict) -> None:
    """Archive a machine-readable result block as ``<name>.json``.

    Perf-regression harnesses (e.g. ``BENCH_fluid.json``) commit these
    files so later PRs can diff before/after numbers.
    """
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(f"\n===== {name}.json =====\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    _write_atomic(RESULTS_DIR / f"{name}.json", text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    The experiments are deterministic simulations — repeating them
    would measure the same virtual outcome at real wall cost — so
    every bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
