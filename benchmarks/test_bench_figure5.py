"""Fig. 5 — final b_eff_io comparison across the four platforms.

The paper's Fig. 5 plots the b_eff_io value per partition size for
the IBM SP, Cray T3E, Hitachi SR 8000 and NEC SX-5.  Its reading:
absolute values correlate with the amount of memory (and cache) in
each system; the SP keeps gaining with partition size, the T3E does
not, and the SX-5's huge filesystem cache gives it a strong
small-partition value.
"""

import pytest

from benchmarks._harness import once, record
from repro.beffio import BeffIOConfig
from repro.machines import get_machine
from repro.reporting import figure5_rows
from repro.util import MB

CONFIG = BeffIOConfig(T=2.0)
RUNS = [
    ("sp", (4, 16)),
    ("t3e", (4, 16)),
    ("sr8000", (4, 16)),
    ("sx5", (4,)),
]


def run_figure5():
    entries = []
    for key, partitions in RUNS:
        spec = get_machine(key)
        for n in partitions:
            entries.append((key, spec.name, spec.run_beffio(n, CONFIG)))
    return entries


@pytest.mark.benchmark(group="figure5")
def test_figure5(benchmark):
    entries = once(benchmark, run_figure5)

    lines = [f"Fig. 5: b_eff_io per partition (T={CONFIG.T} s scaled)", ""]
    for name, procs, value in figure5_rows([(n, r) for _k, n, r in entries]):
        bar = "#" * max(1, int(value / 10))
        lines.append(f"{name:26s} n={procs:3d} {value:9.1f} MB/s  {bar}")
    record("figure5", "\n".join(lines))

    values = {(k, r.nprocs): r.b_eff_io for k, _n, r in entries}

    # every platform produces a positive partition value
    assert all(v > 0 for v in values.values())
    # the SP gains more from 4 -> 16 than the T3E (Fig. 3's contrast
    # carried into the final values)
    sp_gain = values[("sp", 16)] / values[("sp", 4)]
    t3e_gain = values[("t3e", 16)] / values[("t3e", 4)]
    assert sp_gain > t3e_gain
    # the cache-rich SX-5 posts the best small-partition value
    assert values[("sx5", 4)] >= max(
        values[(k, 4)] for k in ("sp", "t3e", "sr8000")
    )
