"""Incremental lint engine: cold vs warm vs parallel whole-program walls.

The perf-regression harness for the ``repro-lint`` engine.  One cold
run extracts every file summary from scratch; the warm run replays all
of them from the content-hash-keyed cache and re-runs only the (cheap)
global fixpoint, so its wall must sit well under the cold one.  A
parallel cold run (``jobs=4``) is recorded for the trajectory but not
gated: process-pool spawn costs on small CI runners can eat the win,
while the warm ratio is machine-independent.

As with ``BENCH_sweepcache``, the gated number is the measured warm
speedup clamped (``warm.speedup_gate``): raw warm ratios swing with
filesystem cache state between runners, and the clamp keeps the gate
stable while the in-bench assertion still enforces the acceptance
criterion on the raw value.  Byte-identity of the three reports is
asserted here too — the benchmark would be meaningless if the fast
paths changed the answer.
"""

from __future__ import annotations

import time

from benchmarks._harness import once, record, record_json
from repro.devtools.lint import RULES, run_engine
from repro.devtools.sarif import render_sarif

#: acceptance criterion: the warm engine at least this much faster
REQUIRED_WARM_SPEEDUP = 1.5

#: clamp for the gated warm ratio (see module docstring)
GATE_CLAMP = 2.5

TARGET = ["src"]


def run_lint_bench(cache_dir: str) -> dict:
    t0 = time.perf_counter()
    cold = run_engine(TARGET, cache_dir=cache_dir)
    cold_wall = time.perf_counter() - t0
    assert cold.stats["cache_hits"] == 0

    t0 = time.perf_counter()
    warm = run_engine(TARGET, cache_dir=cache_dir)
    warm_wall = time.perf_counter() - t0
    assert warm.stats["reanalyzed"] == []
    assert warm.stats["cache_hits"] == cold.stats["files"]

    t0 = time.perf_counter()
    parallel = run_engine(TARGET, jobs=4)
    parallel_wall = time.perf_counter() - t0

    reports = [
        render_sarif(r.violations, RULES, "bench")
        for r in (cold, warm, parallel)
    ]
    identical = reports[0] == reports[1] == reports[2]
    assert identical

    speedup = cold_wall / warm_wall
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm engine only {speedup:.2f}x faster than cold"
    )
    return {
        "files": cold.stats["files"],
        "violations": len(cold.violations),
        "cold": {"wall_s": round(cold_wall, 3)},
        "warm": {
            "wall_s": round(warm_wall, 3),
            "speedup": round(speedup, 2),
            "speedup_gate": round(min(speedup, GATE_CLAMP), 2),
        },
        "parallel": {"jobs": 4, "wall_s": round(parallel_wall, 3)},
        "byte_identical": identical,
    }


def test_lint_engine(benchmark, tmp_path):
    payload = once(benchmark, lambda: run_lint_bench(str(tmp_path / "cache")))
    record_json("BENCH_lint", payload)
    warm, parallel = payload["warm"], payload["parallel"]
    record(
        "lint_engine",
        "\n".join([
            f"engine: {payload['files']} files, "
            f"{payload['violations']} finding(s)",
            f"cold {payload['cold']['wall_s']:.2f}s -> "
            f"warm {warm['wall_s']:.3f}s ({warm['speedup']:.1f}x, "
            "byte-identical)",
            f"parallel (jobs={parallel['jobs']}): "
            f"{parallel['wall_s']:.2f}s",
        ]),
    )
