"""Sec. 5.4 — the termination algorithm's hidden cost.

The b_eff_io time-driven loop ends each collective repetition with a
barrier followed by a broadcast of the root's clock decision.  The
paper: "This termination algorithm is based on the assumption that a
barrier followed by a broadcast is at least 10 times faster than a
single read or write access.  For example, the fastest access on the
T3E for L = 1 kB chunks is about 4 MB/s, i.e., 250 us per call.  In
contrast, a barrier followed by a broadcast needs only about 60 us on
32 PEs, which is NOT 10 times faster" — so the termination round
materially inflates small-chunk pattern times.

We measure both quantities on the simulated T3E at 32 processes and
verify the paper's conclusion (ratio < 10), then quantify the
overhead by comparing a collective loop against the same accesses
without termination rounds.
"""

import pytest

from benchmarks._harness import once, record
from repro.machines import get_machine
from repro.mpi import World
from repro.mpiio import IOFile
from repro.pfs import FileSystem
from repro.util import KB, MB

PROCS = 32


def measure_barrier_bcast(spec):
    """Time of one barrier + 1-byte bcast round at PROCS processes."""
    fabric = spec.fabric_factory(PROCS)()
    world = World(fabric)
    times = []

    def program(comm):
        yield from comm.barrier()  # warm-up alignment
        t0 = comm.wtime()
        yield from comm.barrier()
        yield from comm.bcast(root=0, nbytes=1, data=False)
        if comm.rank == 0:
            times.append(comm.wtime() - t0)

    world.run(program)
    return times[0]


def measure_small_write(spec):
    """Time of one noncollective 1 kB write call (type 1/2-style)."""
    fabric = spec.fabric_factory(PROCS)()
    world = World(fabric)
    fs = FileSystem(fabric.sim, spec.pfs)
    f = IOFile(world.comm_world, fs, "probe", sync_drains=False)
    times = []

    def program(comm):
        if comm.rank == 0:
            # warm a stream, then time one call
            yield from f.write(0, KB)
            t0 = comm.wtime()
            yield from f.write(0, KB)
            times.append(comm.wtime() - t0)
        else:
            return
            yield  # pragma: no cover

    world.run(program)
    return times[0]


def run_termination():
    spec = get_machine("t3e")
    return measure_barrier_bcast(spec), measure_small_write(spec)


@pytest.mark.benchmark(group="termination")
def test_termination(benchmark):
    barrier_bcast, small_write = once(benchmark, run_termination)
    ratio = small_write / barrier_bcast

    lines = [
        f"T3E, {PROCS} processes:",
        f"  barrier + bcast round : {barrier_bcast * 1e6:8.1f} us  (paper: ~60 us)",
        f"  one 1 kB write call   : {small_write * 1e6:8.1f} us  (paper: ~250 us)",
        f"  access / termination  : {ratio:8.1f}x  (paper: < 10x -> assumption violated)",
        "",
        "Conclusion reproduced: the collective termination round is NOT",
        ">= 10x faster than the smallest access, so the time-driven loop",
        "noticeably inflates small-chunk collective patterns.  The paper",
        "proposes geometric repetition factors as the fix.",
    ]
    record("termination", "\n".join(lines))

    # the paper's violated assumption: ratio below 10
    assert ratio < 10.0
    # both costs are in a physically sensible band
    assert 5e-6 < barrier_bcast < 5e-4
    assert 5e-5 < small_write < 5e-3
