"""Table 2 — The pattern details used in b_eff_io.

Regenerates the pattern list from code for two machine memory sizes
and checks the table's own arithmetic: sum(U) = 64, 36 patterns with
scheduled time, the per-type U sums (22/12/10/10/10), the
non-wellformed +8 variants, and the M_PART = max(2 MB, memory/128)
resolution.
"""

import pytest

from benchmarks._harness import once, record
from repro.beffio import SUM_U, build_patterns, mpart_for
from repro.beffio.patterns import active_pattern_count, patterns_of_type
from repro.reporting import table2
from repro.util import GB, KB, MB


def run_table2():
    return {
        "T3E-like (128 MB/proc)": build_patterns(128 * MB),
        "SR8000-like (1 GB/proc)": build_patterns(1 * GB),
    }


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark):
    tables = once(benchmark, run_table2)

    blocks = []
    for label, patterns in tables.items():
        blocks.append(f"--- {label}: M_PART = {patterns[1].l // MB} MB ---")
        blocks.append(table2(patterns).render())
        blocks.append("")
    record("table2", "\n".join(blocks))

    for label, patterns in tables.items():
        assert sum(p.U for p in patterns) == SUM_U == 64
        assert active_pattern_count(patterns) == 36
        per_type = {
            t: sum(p.U for p in patterns_of_type(patterns, t)) for t in range(5)
        }
        assert per_type == {0: 22, 1: 12, 2: 10, 3: 10, 4: 10}
        # chunk-size set: 1 kB, 32 kB, 1 MB, M_PART and the +8 variants
        t2 = patterns_of_type(patterns, 2)
        assert {p.l for p in t2 if p.wellformed} >= {KB, 32 * KB, MB}
        assert {p.l for p in t2 if not p.wellformed} == {KB + 8, 32 * KB + 8, MB + 8}

    assert tables["T3E-like (128 MB/proc)"][1].l == 2 * MB  # floor
    assert tables["SR8000-like (1 GB/proc)"][1].l == 8 * MB  # memory/128
    assert mpart_for(1 * GB) == 8 * MB
