"""Ablations of the design choices DESIGN.md calls out.

1. logavg vs arithmetic averaging of patterns (the paper argues for
   the logarithmic average; arithmetic averaging lets a single fast
   pattern dominate);
2. max-over-methods vs a single fixed method (the definition's
   vendor-neutrality mechanism);
3. ring/random two-step weighting vs a flat average over all twelve
   patterns;
4. DES backend vs the analytic round model (simulation-fidelity
   check for the fast path);
5. cache semantics of MPI_File_sync (publish vs drain) and the
   T-dependence of b_eff_io (Sec. 5.4: short runs measure the cache,
   only datasets far beyond the cache measure disks).
"""

import statistics

import pytest

from benchmarks._harness import once, record
from repro.beff import MeasurementConfig, run_beff
from repro.beff.analysis import best_bandwidths, per_pattern_averages
from repro.beffio import BeffIOConfig
from repro.machines import cray_t3e_900, get_machine
from repro.util import MB, logavg

PROCS = 16
AN = MeasurementConfig(backend="analytic")
DES = MeasurementConfig(max_looplength=1)


def run_ablations():
    spec = cray_t3e_900()
    out = {}
    out["des"] = spec.run_beff(PROCS, DES)
    out["analytic"] = spec.run_beff(PROCS, AN)
    for method in ("sendrecv", "nonblocking", "alltoallv"):
        cfg = MeasurementConfig(methods=(method,), backend="analytic")
        out[f"only-{method}"] = spec.run_beff(PROCS, cfg)

    # cache ablation: small-cache T3E variant, publish vs drain sync, two Ts
    import dataclasses

    small_cache_pfs = dataclasses.replace(spec.pfs, cache_bytes=64 * MB)
    small_cache = dataclasses.replace(spec, pfs=small_cache_pfs)
    io = {}
    for label, T, drains in (
        ("T=1.5,publish", 1.5, False),
        ("T=6,publish", 6.0, False),
        ("T=1.5,drain", 1.5, True),
    ):
        cfg = BeffIOConfig(T=T, pattern_types=(0, 2), sync_drains=drains)
        io[label] = small_cache.run_beffio(4, cfg)

    # termination ablation: the Sec. 5.4 proposed geometric batching
    # vs the released per-iteration algorithm, on the shared-pointer
    # collective type (the small-chunk victim)
    term = {}
    for label in ("per-iteration", "geometric"):
        cfg = BeffIOConfig(T=1.5, pattern_types=(1,), termination=label)
        term[label] = spec.run_beffio(4, cfg)
    return out, io, term


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    comm, io, term = once(benchmark, run_ablations)

    des, analytic = comm["des"], comm["analytic"]
    per_pattern = analytic.per_pattern
    arith = statistics.mean(per_pattern.values())
    flat_log = logavg(per_pattern.values())

    lines = ["Ablations on the simulated Cray T3E (16 processes)", ""]
    lines.append("1) averaging rule (same analytic measurements):")
    lines.append(f"   paper two-step logavg : {analytic.b_eff / MB:9.0f} MB/s")
    lines.append(f"   flat logavg (12 pats) : {flat_log / MB:9.0f} MB/s")
    lines.append(f"   arithmetic mean       : {arith / MB:9.0f} MB/s")
    lines.append("")
    lines.append("2) max-over-methods vs single method:")
    for method in ("sendrecv", "nonblocking", "alltoallv"):
        r = comm[f"only-{method}"]
        lines.append(f"   only {method:12s}: {r.b_eff / MB:9.0f} MB/s")
    lines.append(f"   max over methods    : {analytic.b_eff / MB:9.0f} MB/s")
    lines.append("")
    lines.append("3) backend fidelity:")
    delta = abs(des.b_eff - analytic.b_eff) / des.b_eff
    lines.append(f"   DES      : {des.b_eff / MB:9.0f} MB/s")
    lines.append(f"   analytic : {analytic.b_eff / MB:9.0f} MB/s ({delta:.1%} apart)")
    lines.append("")
    lines.append("4) sync semantics & T-dependence (64 MB cache variant):")
    for label, res in io.items():
        lines.append(f"   {label:14s}: b_eff_io = {res.b_eff_io / MB:7.1f} MB/s")
    lines.append("")
    lines.append("5) termination algorithm (type 1, 1 kB pattern No. 13):")

    def small_chunk_bw(res):
        for r in res.pattern_table("write"):
            if r.number == 13:
                return r.bandwidth
        raise KeyError(13)

    for label, res in term.items():
        lines.append(
            f"   {label:14s}: 1 kB shared-collective writes at "
            f"{small_chunk_bw(res) / MB:6.2f} MB/s"
        )
    record("ablations", "\n".join(lines))

    # arithmetic mean over patterns >= logavg (AM-GM); the paper's rule
    # is the more conservative one
    assert arith >= flat_log * (1 - 1e-9)

    # max-over-methods >= every single-method value, and alltoallv is
    # the weak method on sparse ring traffic
    for method in ("sendrecv", "nonblocking", "alltoallv"):
        assert analytic.b_eff >= comm[f"only-{method}"].b_eff * 0.999
    assert comm["only-alltoallv"].b_eff < comm["only-nonblocking"].b_eff

    # backend agreement within 20 % (same definition, two pricings)
    assert delta < 0.20

    # cache effects: with publish-sync, a longer run (more data than
    # the cache) reports *lower* bandwidth; draining on every sync
    # lowers the short run further
    assert io["T=6,publish"].b_eff_io < io["T=1.5,publish"].b_eff_io
    assert io["T=1.5,drain"].b_eff_io < io["T=1.5,publish"].b_eff_io

    # the geometric termination recovers small-chunk bandwidth
    assert small_chunk_bw(term["geometric"]) > small_chunk_bw(term["per-iteration"])
