"""b_eff_io engine scaling: fast path vs. reference wall-clock + fidelity.

The perf-regression harness for the fast-path b_eff_io engine (cached
collective decompositions, O(1) interval accounting, steady-state
repetition fast-forward).  It runs a representative partition — 16
processes against an 8-server, 1 MB-stripe parallel file system with a
scaled-down scheduled time — in both engine modes, asserts the fast
path is at least 5x faster with *bit-identical* aggregates, measures
(without a hard bar) the speedup on the full pattern table including
the non-wellformed rows, and commits everything to
``benchmarks/results/BENCH_beffio.json`` so future PRs can't silently
regress the speedup.

Two findings this harness documents:

* The headline run uses ``wellformed_only=True``.  The paper's
  non-wellformed rows (sizes like 1 MB + 8 bytes) advance the file
  per repetition by an offset that is not a multiple of the stripe
  period, so their per-server request streams rotate with periods far
  beyond what the steady-state detector can window — they resist
  fast-forwarding for the same structural reason the paper singles
  them out as a separate family.  The full-table run is reported
  alongside for honesty; its speedup is real but smaller.
* Fidelity is exact equality, not approx: a skip only ever replaces
  repetitions the detector proved periodic and re-verified by trial
  replay, so fast and reference runs must agree to the last bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import pytest

from benchmarks._harness import once, record, record_json
from repro.beffio import BeffIOConfig, run_beffio
from repro.mpi import World
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import KB, MB

#: target of the ISSUE's acceptance criterion
REQUIRED_SPEEDUP = 5.0

#: the representative partition: 16 procs, 8 servers, 1 MB stripes
NPROCS = 16
MEMORY_PER_PROC = 64 * MB
#: scaled-down scheduled time (the official 900 s would take minutes
#: even on the fast path; the speedup ratio is stable in T)
HEADLINE_T = 600.0
FULL_TABLE_T = 120.0


def _env_factory(nprocs: int = NPROCS):
    def make():
        sim = Simulator()
        fabric = Fabric(
            sim, Torus((nprocs,), link_bw=1000 * MB),
            NetParams(latency=5e-6, msg_rate_cap=500 * MB),
        )
        world = World(fabric)
        fs = FileSystem(
            sim,
            PFSConfig(
                num_servers=8,
                stripe_unit=1 * MB,
                disk_bw=100 * MB,
                ingest_bw=800 * MB,
                seek_time=2e-3,
                request_overhead=1e-4,
                disk_block=4 * KB,
                cache_bytes=512 * MB,
                client_bw=400 * MB,
                server_net_bw=400 * MB,
                call_overhead=3e-5,
            ),
        )
        return world, fs

    return make


@dataclass
class ModeResult:
    wall_s: float
    b_eff_io: float
    pattern_runs: tuple


def _run_mode(mode: str, **config_kwargs) -> ModeResult:
    config = BeffIOConfig(mode=mode, **config_kwargs)
    t0 = time.perf_counter()
    result = run_beffio(_env_factory(), MEMORY_PER_PROC, config)
    wall = time.perf_counter() - t0
    return ModeResult(
        wall_s=wall,
        b_eff_io=result.b_eff_io,
        pattern_runs=tuple(result.pattern_runs),
    )


def _compare(name: str, **config_kwargs) -> dict:
    ref = _run_mode("reference", **config_kwargs)
    fast = _run_mode("fast", **config_kwargs)
    # bit-identical aggregates: exact equality, no tolerance
    assert fast.b_eff_io == ref.b_eff_io, name
    assert fast.pattern_runs == ref.pattern_runs, name
    return {
        "name": name,
        "procs": NPROCS,
        "T": config_kwargs["T"],
        "reference_wall_s": round(ref.wall_s, 3),
        "fast_wall_s": round(fast.wall_s, 3),
        "speedup": round(ref.wall_s / fast.wall_s, 2),
        "b_eff_io_MBps": round(ref.b_eff_io / MB, 3),
        "bit_identical": True,
    }


def run_beffio_scaling() -> dict:
    headline = _compare(
        "wellformed-type0",
        T=HEADLINE_T, pattern_types=(0,), wellformed_only=True,
    )
    full = _compare(
        "full-table-type0",
        T=FULL_TABLE_T, pattern_types=(0,),
    )
    return {"headline": headline, "full_table": full}


@pytest.mark.benchmark(group="beffio-scaling")
def test_beffio_scaling(benchmark):
    payload = once(benchmark, run_beffio_scaling)
    record_json("BENCH_beffio", payload)
    lines = [
        f"{'run':>18s} {'T':>6s} {'reference':>11s} {'fast':>9s} {'speedup':>8s}"
        f" {'b_eff_io':>11s}"
    ]
    for row in (payload["headline"], payload["full_table"]):
        lines.append(
            f"{row['name']:>18s} {row['T']:6.0f} {row['reference_wall_s']:10.2f}s"
            f" {row['fast_wall_s']:8.2f}s {row['speedup']:7.2f}x"
            f" {row['b_eff_io_MBps']:8.2f} MB/s"
        )
    record("beffio_scaling", "\n".join(lines))

    # the ISSUE's acceptance bar: >= 5x on the representative run,
    # with bit-identical aggregates (asserted inside _compare)
    assert payload["headline"]["speedup"] >= REQUIRED_SPEEDUP, payload["headline"]
    # the full table (non-wellformed rows included) must still not be
    # slower on the fast path — the detector's bookkeeping has to pay
    # for itself even when most patterns never arm
    assert payload["full_table"]["speedup"] >= 1.0, payload["full_table"]
