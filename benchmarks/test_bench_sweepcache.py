"""Sweep-scale caching: cold vs warm grids, dynamic vs static dispatch.

The perf-regression harness for the content-addressed result store and
the grid scheduler.  It runs the full machine-zoo × both-benchmark
grid cold (every cell simulated) and warm (every cell served from the
store), asserts the warm pass executes **zero** fresh simulations at
least 20x faster with byte-identical envelopes, proves in-flight
dedupe (8 concurrent submitters of one spec, one execution), and
records the dynamic-vs-static makespan win on a skewed grid.

Two measurement choices this harness documents:

* The skew comparison feeds :func:`repro.runtime.plan_schedule` with
  *measured* serial per-cell wall times rather than racing two live
  pools.  The planner's assignments are exactly what each dispatch
  order produces on a 2-worker pool, so the modelled makespans are the
  real ones — and the comparison stays meaningful on single-core CI
  runners where two live pools would just serialize.
* ``warm.speedup_gate`` is the measured speedup clamped to 40x.  The
  raw warm speedup (hundreds: file reads vs simulations) swings with
  filesystem cache state between runners; the clamp keeps the
  regression gate stable while the in-bench ``>= 20x`` assertion still
  enforces the acceptance criterion on the raw value.
"""

from __future__ import annotations

import tempfile
import threading
import time

import pytest

from benchmarks._harness import once, record, record_json
from repro.beff.measurement import MeasurementConfig
from repro.beffio.benchmark import BeffIOConfig
from repro.machines import MACHINES
from repro.runtime import (
    GridScheduler,
    RunStore,
    SupervisionPolicy,
    canonical_envelope_text,
    expand_grid,
    plan_schedule,
    run_grid,
    run_spec,
)

#: acceptance criterion: warm grid at least this much faster than cold
REQUIRED_WARM_SPEEDUP = 20.0

#: clamp for the gated warm ratio (see module docstring)
GATE_CLAMP = 40.0

BEFF_CFG = MeasurementConfig(backend="analytic")
BEFFIO_CFG = BeffIOConfig(T=1.0, pattern_types=(0,))

#: acceptance criterion: a fault-free warm supervised grid costs at
#: most 5 % over the unsupervised warm pass ...
SUPERVISED_OVERHEAD = 1.05
#: ... plus this absolute slack: warm walls are tens of milliseconds,
#: where a single scheduler hiccup outweighs any 5 % margin
SUPERVISED_SLACK_S = 0.1

#: timing repetitions for the warm-vs-warm comparison (min-of-N damps
#: filesystem-cache and scheduler noise on CI runners)
SUPERVISED_REPS = 3

#: the skewed grid: one large DES cell among eight small ones
SKEW_BIG_PROCS = 8
SKEW_SMALL_PROCS = 2
SKEW_SMALL_CELLS = 8
SKEW_JOBS = 2


def _full_grid():
    """Every machine × both benchmarks (b_eff_io only where a PFS exists)."""
    return expand_grid(
        sorted(MACHINES),
        ["b_eff", "b_eff_io"],
        [2, 4],
        configs={"b_eff": BEFF_CFG, "b_eff_io": BEFFIO_CFG},
    )


def _cold_vs_warm(store_dir: str) -> dict:
    store = RunStore(store_dir)
    specs = _full_grid()

    t0 = time.perf_counter()
    cold = run_grid(specs, store=store)
    cold_wall = time.perf_counter() - t0
    assert cold.fresh == len(specs) and cold.cached == 0

    t0 = time.perf_counter()
    warm = run_grid(specs, store=store)
    warm_wall = time.perf_counter() - t0

    # the acceptance criterion: zero fresh simulations, >= 20x faster,
    # byte-identical envelopes
    assert warm.fresh == 0 and warm.cached == len(specs)
    speedup = cold_wall / warm_wall
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm grid only {speedup:.1f}x faster than cold"
    )
    identical = all(
        canonical_envelope_text(a.envelope) == canonical_envelope_text(b.envelope)
        for a, b in zip(cold.cells, warm.cells)
    )
    assert identical

    return {
        "cells": len(specs),
        "cold_wall_s": round(cold_wall, 3),
        "warm_wall_s": round(warm_wall, 4),
        "speedup": round(speedup, 1),
        "speedup_gate": round(min(speedup, GATE_CLAMP), 2),
        "fresh_warm": warm.fresh,
        "byte_identical": identical,
    }


def _supervised_overhead(store_dir: str) -> dict:
    """Supervision must be (nearly) free when the grid is fault-free.

    Re-runs the already-warm full grid twice per repetition — once
    plain, once under a :class:`SupervisionPolicy` — and requires the
    supervised warm wall to stay within ``SUPERVISED_OVERHEAD`` (plus
    an absolute slack, see above) of the plain one.  Every cell is
    served from the store in both passes, so this measures exactly the
    supervision layer's bookkeeping, not process-spawn costs on fresh
    cells.  The gated ratio is ``plain/supervised`` clamped to 1.0
    (higher is better, like every other gated metric; the clamp keeps
    noise from crediting supervision with a speedup the baseline would
    then have to defend).
    """
    store = RunStore(store_dir)
    specs = _full_grid()
    policy = SupervisionPolicy(deadline_s=300.0, max_failures=2)

    plain_wall = sup_wall = float("inf")
    for _ in range(SUPERVISED_REPS):
        t0 = time.perf_counter()
        plain = run_grid(specs, store=store)
        plain_wall = min(plain_wall, time.perf_counter() - t0)

        t0 = time.perf_counter()
        supervised = run_grid(specs, store=store, supervision=policy)
        sup_wall = min(sup_wall, time.perf_counter() - t0)

        assert plain.fresh == 0 and supervised.fresh == 0
        assert supervised.poisoned == () and supervised.validity.ok
        assert all(
            canonical_envelope_text(a.envelope) == canonical_envelope_text(b.envelope)
            for a, b in zip(plain.cells, supervised.cells)
        )

    assert sup_wall <= plain_wall * SUPERVISED_OVERHEAD + SUPERVISED_SLACK_S, (
        f"supervised warm grid {sup_wall:.4f}s exceeds "
        f"{SUPERVISED_OVERHEAD:.2f}x + {SUPERVISED_SLACK_S}s slack over "
        f"plain {plain_wall:.4f}s"
    )
    return {
        "cells": len(specs),
        "plain_warm_wall_s": round(plain_wall, 4),
        "supervised_warm_wall_s": round(sup_wall, 4),
        "overhead": round(sup_wall / plain_wall, 3),
        "ratio_gate": round(min(plain_wall / sup_wall, 1.0), 3),
    }


def _dedupe_proof() -> dict:
    """8 concurrent submitters of one fingerprint cost one execution."""
    spec = run_spec("b_eff", "t3e", 2, BEFF_CFG)
    submitters = 8
    barrier = threading.Barrier(submitters)
    sched = GridScheduler()
    results = []

    def submit():
        barrier.wait()
        results.append(sched.result(spec))

    threads = [threading.Thread(target=submit) for _ in range(submitters)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sched.executions == 1
    assert all(r is results[0] for r in results)
    return {"submitters": submitters, "executions": sched.executions}


def _skewed_dispatch() -> dict:
    """Dynamic LPT vs static chunking over measured per-cell costs."""
    des = MeasurementConfig(backend="des")

    def measure(nprocs: int) -> float:
        t0 = time.perf_counter()
        run_spec("b_eff", "t3e", nprocs, des).run()
        return time.perf_counter() - t0

    big = measure(SKEW_BIG_PROCS)
    small = measure(SKEW_SMALL_PROCS)
    # the skewed grid in submission order: the big cell first (worst
    # case for static chunking: its chunk also drags four small cells)
    costs = [big] + [small] * SKEW_SMALL_CELLS

    dynamic = plan_schedule(costs, jobs=SKEW_JOBS, policy="dynamic")
    static = plan_schedule(costs, jobs=SKEW_JOBS, policy="static")
    assert dynamic.makespan < static.makespan, (
        f"dynamic {dynamic.makespan:.2f}s not better than "
        f"static {static.makespan:.2f}s"
    )
    return {
        "big_cell_wall_s": round(big, 3),
        "small_cell_wall_s": round(small, 3),
        "cells": len(costs),
        "jobs": SKEW_JOBS,
        "static_makespan_s": round(static.makespan, 3),
        "dynamic_makespan_s": round(dynamic.makespan, 3),
        "speedup": round(static.makespan / dynamic.makespan, 2),
    }


def run_sweepcache() -> dict:
    with tempfile.TemporaryDirectory() as store_dir:
        warm = _cold_vs_warm(store_dir)
        supervised = _supervised_overhead(store_dir)
    return {
        "warm": warm,
        "supervised": supervised,
        "dedupe": _dedupe_proof(),
        "skew": _skewed_dispatch(),
    }


@pytest.mark.benchmark(group="sweepcache")
def test_sweepcache(benchmark):
    payload = once(benchmark, run_sweepcache)
    record_json("BENCH_sweepcache", payload)
    warm, dedupe, skew = payload["warm"], payload["dedupe"], payload["skew"]
    supervised = payload["supervised"]
    record(
        "sweepcache",
        "\n".join([
            f"grid: {warm['cells']} cells "
            f"cold {warm['cold_wall_s']:.2f}s -> warm {warm['warm_wall_s']:.3f}s "
            f"({warm['speedup']:.0f}x, 0 fresh, byte-identical)",
            f"supervised warm: {supervised['supervised_warm_wall_s']:.4f}s vs "
            f"plain {supervised['plain_warm_wall_s']:.4f}s "
            f"({supervised['overhead']:.3f}x overhead)",
            f"dedupe: {dedupe['submitters']} concurrent submitters, "
            f"{dedupe['executions']} execution",
            f"skew ({skew['cells']} cells, jobs={skew['jobs']}): "
            f"static {skew['static_makespan_s']:.2f}s vs "
            f"dynamic {skew['dynamic_makespan_s']:.2f}s "
            f"({skew['speedup']:.2f}x)",
        ]),
    )
