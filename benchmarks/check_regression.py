"""Fail CI when a headline perf metric regresses past tolerance.

The perf benches archive machine-readable payloads under
``benchmarks/results/BENCH_*.json`` and commit them as the baseline
trajectory.  This gate re-reads the freshly-recorded payloads after a
bench run and compares them against the committed baseline (read via
``git show <ref>:...`` so the working-tree rewrite of the very files
under test cannot mask a regression).

Only **dimensionless speedup ratios** are gated.  Absolute wall times
vary by a factor of a few between the machine that recorded the
committed baseline and whatever runner CI lands on; the ratio between
the fast path and the reference path on the *same* machine is stable,
so that is what a >20 % drop is measured against.

Exit status: 0 when every gated metric holds (or is absent from the
fresh payload — the regular CI smoke jobs do not produce the
``large`` section), 1 on any regression, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import Any, Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

# Each gated metric: (payload file, human label, extractor).  Extractors
# return the metric value or ``None`` when the payload legitimately
# lacks the section (partial CI runs); a malformed payload raises and
# is reported as an error instead.
Extractor = Callable[[dict[str, Any]], Any]


def _round_speedup(procs: int) -> Extractor:
    def extract(payload: dict[str, Any]) -> Any:
        for row in payload.get("rounds", []):
            if row.get("procs") == procs:
                return row.get("speedup")
        return None

    return extract


def _dotted(*path: str) -> Extractor:
    def extract(payload: dict[str, Any]) -> Any:
        node: Any = payload
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return node

    return extract


METRICS: list[tuple[str, str, Extractor]] = [
    ("BENCH_fluid.json", "rounds[procs=128].speedup", _round_speedup(128)),
    ("BENCH_fluid.json", "headline.speedup", _dotted("headline", "speedup")),
    ("BENCH_fluid.json", "ff.speedup", _dotted("ff", "speedup")),
    ("BENCH_fluid.json", "flow_alloc.slots_speedup", _dotted("flow_alloc", "slots_speedup")),
    ("BENCH_beffio.json", "headline.speedup", _dotted("headline", "speedup")),
    ("BENCH_beffio.json", "full_table.speedup", _dotted("full_table", "speedup")),
    ("BENCH_sweepcache.json", "warm.speedup_gate", _dotted("warm", "speedup_gate")),
    ("BENCH_sweepcache.json", "supervised.ratio_gate", _dotted("supervised", "ratio_gate")),
    ("BENCH_sweepcache.json", "skew.speedup", _dotted("skew", "speedup")),
    ("BENCH_lint.json", "warm.speedup_gate", _dotted("warm", "speedup_gate")),
]


def _load_fresh(results_dir: pathlib.Path, name: str) -> dict[str, Any] | None:
    path = results_dir / name
    if not path.exists():
        return None
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def _load_baseline(ref: str, name: str) -> dict[str, Any] | None:
    """Read the committed payload at ``ref`` without touching the tree."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:benchmarks/results/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    data = json.loads(proc.stdout)
    if not isinstance(data, dict):
        raise ValueError(f"{ref}:{name}: expected a JSON object")
    return data


def check(results_dir: pathlib.Path, baseline_ref: str, tolerance: float) -> int:
    fresh_cache: dict[str, dict[str, Any] | None] = {}
    base_cache: dict[str, dict[str, Any] | None] = {}
    failures = 0
    gated = 0

    for name, label, extract in METRICS:
        if name not in fresh_cache:
            fresh_cache[name] = _load_fresh(results_dir, name)
        if name not in base_cache:
            base_cache[name] = _load_baseline(baseline_ref, name)
        fresh_payload, base_payload = fresh_cache[name], base_cache[name]

        metric = f"{name}:{label}"
        if fresh_payload is None:
            print(f"SKIP  {metric}  (no fresh payload — bench did not run)")
            continue
        fresh = extract(fresh_payload)
        if fresh is None:
            print(f"SKIP  {metric}  (section absent from fresh payload)")
            continue
        if base_payload is None:
            print(f"NOTE  {metric}  fresh={fresh:.2f}  (no baseline at {baseline_ref})")
            continue
        base = extract(base_payload)
        if base is None:
            print(f"NOTE  {metric}  fresh={fresh:.2f}  (new metric, no baseline value)")
            continue

        gated += 1
        floor = base * (1.0 - tolerance)
        if fresh < floor:
            failures += 1
            print(
                f"FAIL  {metric}  fresh={fresh:.2f} < floor={floor:.2f} "
                f"(baseline={base:.2f}, tolerance={tolerance:.0%})"
            )
        else:
            print(f"OK    {metric}  fresh={fresh:.2f}  baseline={base:.2f}  floor={floor:.2f}")

    print(f"\n{gated} metric(s) gated, {failures} regression(s)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=RESULTS_DIR,
        help="directory holding the freshly-recorded BENCH_*.json payloads",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref whose committed benchmarks/results/ is the baseline (default: HEAD)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional drop below baseline before failing (default: 0.20)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    try:
        return check(args.results_dir, args.baseline_ref, args.tolerance)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"ERROR  {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
