"""Fig. 1 — Balance factor for a variety of platforms.

Balance factor = b_eff / R_max (bytes communicated per floating-point
operation).  The paper's reading: well-balanced systems (vector
machines, the T3E) deliver noticeably more bytes/flop than clusters
of SMPs with weak inter-node networks; rank placement alone moves a
machine down the ranking (SR 8000 round-robin vs sequential).
"""

import pytest

from benchmarks._harness import once, record
from repro.beff import MeasurementConfig, balance_factor
from repro.machines import get_machine
from repro.reporting import figure1_rows

CONFIG = MeasurementConfig(backend="analytic")

RUNS = [
    ("t3e", 64),
    ("sr8000", 24),
    ("sr8000-seq", 24),
    ("sr2201", 16),
    ("sx5", 4),
    ("sx4", 16),
    ("hpv", 7),
    ("sv1", 15),
]


def run_figure1():
    entries = []
    for key, procs in RUNS:
        spec = get_machine(key)
        entries.append((key, spec, spec.run_beff(procs, CONFIG)))
    return entries


@pytest.mark.benchmark(group="figure1")
def test_figure1(benchmark):
    entries = once(benchmark, run_figure1)
    rows = figure1_rows([(s, r) for _k, s, r in entries])
    factors = {k: balance_factor(r.b_eff, s.rmax(r.nprocs)) for k, s, r in entries}

    lines = ["Fig. 1: balance factor b_eff / R_max (bytes per flop)", ""]
    for name, bf in sorted(rows, key=lambda x: -x[1]):
        bar = "#" * max(1, int(bf * 300))
        lines.append(f"{name:36s} {bf:7.4f}  {bar}")
    record("figure1", "\n".join(lines))

    # all factors land in the plausible HPC band (0.01 .. 1 B/flop)
    for key, bf in factors.items():
        assert 0.005 < bf < 1.0, (key, bf)

    # the paper's qualitative ordering claims
    assert factors["sr8000-seq"] > factors["sr8000"]  # placement alone
    assert factors["sx5"] > factors["hpv"]  # vector beats bus-SMP
    assert factors["t3e"] > factors["sr8000"]  # T3E is well balanced
