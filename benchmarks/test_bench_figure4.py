"""Fig. 4 — per-pattern I/O bandwidth vs chunk size, four systems.

Each row of the paper's Fig. 4 shows, for one machine, the bandwidth
of every pattern type as a function of the disk chunk size, for the
three access methods.  We regenerate the underlying tables for the
four systems (IBM SP, Cray T3E, Hitachi SR 8000, NEC SX-5) and check
the findings the paper calls out in Sec. 5.3:

 * "the scattering pattern type 0 is the best on all platforms for
   small chunk sizes on disk" (collective buffering absorbs 1 kB
   chunks);
 * wellformed vs non-wellformed differences are large where disk
   blocks are big (T3E);
 * small noncollective chunks are an order of magnitude below 1 MB
   chunks.
"""

import pytest

from benchmarks._harness import once, record
from repro.beffio import BeffIOConfig
from repro.machines import get_machine
from repro.reporting import beffio_pattern_table
from repro.reporting.plots import multi_series_chart
from repro.util import KB, MB

SYSTEMS = ("sp", "t3e", "sr8000", "sx5")
CONFIG = BeffIOConfig(T=2.5)
PROCS = 4


def run_figure4():
    return {key: get_machine(key).run_beffio(PROCS, CONFIG) for key in SYSTEMS}


def _bw(result, method, number):
    for r in result.pattern_table(method):
        if r.number == number:
            return r.bandwidth
    raise KeyError(number)


def _fig4_chart(result, method):
    """The paper's Fig. 4 row as an ASCII chart: bandwidth per pattern
    type over the pseudo-logarithmic chunk-size axis."""
    runs = result.pattern_table(method)
    by_type: dict[int, dict[str, float]] = {}
    for r in runs:
        base = r.l if r.wellformed else r.l - 8
        if base >= MB:
            label = f"{base // MB} MB"
        else:
            label = f"{base // KB} kB"
        if not r.wellformed:
            label += "+8"
        by_type.setdefault(r.pattern_type, {})[label] = r.bandwidth / MB
    # the chunk axis of the per-chunk types (type 2's labels, ordered)
    x = ["1 kB", "1 kB+8", "32 kB", "32 kB+8", "1 MB", "1 MB+8"]
    series = {}
    for t in sorted(by_type):
        values = [by_type[t].get(label, 0.0) for label in x]
        if any(v > 0 for v in values):
            series[f"type {t}"] = values
    return multi_series_chart(
        x, series, width=40,
        title=f"{method} bandwidth (MB/s, log scale) vs chunk size",
    )


@pytest.mark.benchmark(group="figure4")
def test_figure4(benchmark):
    results = once(benchmark, run_figure4)

    blocks = []
    for key, res in results.items():
        blocks.append(f"===== {get_machine(key).name} =====")
        for method in ("write", "rewrite", "read"):
            blocks.append(beffio_pattern_table(res, method).render())
            blocks.append("")
        blocks.append(_fig4_chart(res, "write"))
        blocks.append("")
    record("figure4", "\n".join(blocks))

    for key, res in results.items():
        for method in ("write", "read"):
            # type 0 handles 1 kB disk chunks (No. 5) about as well as
            # its own 1 MB chunks (No. 3): the scatter call still moves
            # 1 MB of memory per call
            t0_small = _bw(res, method, 5)
            t0_large = _bw(res, method, 3)
            assert t0_small > 0.3 * t0_large, (key, method)

            # ...while noncollective 1 kB chunks (type 2, No. 21)
            # collapse versus their 1 MB sibling (No. 19)
            t2_small = _bw(res, method, 21)
            t2_large = _bw(res, method, 19)
            assert t2_small < 0.5 * t2_large, (key, method)

            # and type 0 at 1 kB crushes type 2 at 1 kB
            assert t0_small > 2 * t2_small, (key, method)

    # wellformed vs non-wellformed gap is large on the T3E (16 kB disk
    # blocks): 1 kB+8 (No. 23) vs 1 kB (No. 21) on writes
    t3e = results["t3e"]
    assert _bw(t3e, "write", 21) > 1.5 * _bw(t3e, "write", 23)

    # reads of just-written data benefit from the filesystem cache:
    # read >= write for the large-chunk patterns on the cache-rich SX-5
    sx5 = results["sx5"]
    assert _bw(sx5, "read", 19) >= 0.8 * _bw(sx5, "write", 19)
