"""Table 1 — Effective Benchmark Results.

Regenerates the paper's Table 1 on the simulated machine library:
b_eff, b_eff per process, L_max, ping-pong, b_eff at L_max, per
process at L_max, and the ring-patterns-only column, for every system
(at simulation-affordable process counts; the analytic backend prices
the large T3E partitions).

Shape assertions (the paper's reading of the table):
 * per-process b_eff falls as the T3E partition grows;
 * ping-pong exceeds the loaded per-process bandwidth everywhere;
 * ring-only at L_max >= the ring+random value (placement hurts);
 * SR 8000 sequential placement beats round-robin;
 * the vector machines lead the per-process ranking.
"""

import pytest

from benchmarks._harness import once, record
from repro.beff import MeasurementConfig, run_detail
from repro.machines import get_machine
from repro.reporting import table1
from repro.util import MB

CONFIG = MeasurementConfig(backend="analytic")

#: (machine key, process counts) — Table 1's rows at tractable sizes
ROWS = [
    ("t3e", (2, 24, 64, 128, 256, 512)),
    ("sr8000", (24, 128)),
    ("sr8000-seq", (24,)),
    ("sr2201", (16,)),
    ("sx5", (4,)),
    ("sx4", (4, 8, 16)),
    ("hpv", (7,)),
    ("sv1", (15,)),
]

#: paper values for the comparison block: (b_eff/proc, /proc@Lmax, rings)
PAPER = {
    ("t3e", 24): (63, 142, 205),
    ("t3e", 512): (39, 98, 193),
    ("t3e", 128): (44, 99, 195),
    ("t3e", 256): (39, 89, 190),
    ("sr8000", 24): (38, 115, 110),
    ("sr8000-seq", 24): (75, 226, 400),
    ("sr2201", 16): (33, 91, 96),
    ("sx5", 4): (1360, 8762, 8758),
    ("sx4", 16): (604, 3141, 3242),
    ("hpv", 7): (62, 162, 162),
    ("sv1", 15): (96, 373, 375),
}


def run_table1():
    entries = []
    for key, counts in ROWS:
        spec = get_machine(key)
        # ping-pong between ranks 0 and 1 at the row's first partition
        # size (clusters need >= 2 nodes for an inter-node ping-pong)
        detail = run_detail(
            spec.fabric_factory(counts[0] if counts[0] >= 2 else 2),
            spec.memory_per_proc,
            iterations=1,
            int_bits=spec.int_bits,
        )
        pingpong = detail["ping-pong"].bandwidth
        for n in counts:
            result = spec.run_beff(n, CONFIG)
            entries.append((key, spec, result, pingpong))
    return entries


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark):
    entries = once(benchmark, run_table1)

    lines = [table1([(s, r, p) for _k, s, r, p in entries]).render(), ""]
    lines.append("paper vs measured (MB/s):")
    lines.append(
        f"{'system':24s}{'n':>5s} {'b_eff/proc':>16s} {'@Lmax/proc':>16s} {'rings@Lmax':>16s}"
    )
    for key, spec, res, _p in entries:
        paper = PAPER.get((key, res.nprocs))
        if paper is None:
            continue
        measured = (
            res.b_eff_per_proc / MB,
            res.b_eff_at_lmax_per_proc / MB,
            res.ring_only_at_lmax_per_proc / MB,
        )
        cells = "".join(
            f" {p:7d}/{m:7.0f}" for p, m in zip(paper, measured)
        )
        lines.append(f"{spec.name:24.24s}{res.nprocs:5d} {cells}")
    record("table1", "\n".join(lines))

    by_key = {(k, r.nprocs): r for k, _s, r, _p in entries}
    pingpong = {k: p for k, _s, _r, p in entries}

    # per-process b_eff falls with partition size on the T3E
    t3e = [by_key[("t3e", n)] for n in (24, 64, 128, 256, 512)]
    per_proc = [r.b_eff_per_proc for r in t3e]
    assert per_proc == sorted(per_proc, reverse=True)

    # ping-pong beats (or ties, within the latency-amortization margin:
    # a ring keeps two messages in flight, a ping-pong pays startup per
    # message) the loaded per-process bandwidth at L_max
    for (key, _n), res in by_key.items():
        assert pingpong[key] >= res.b_eff_at_lmax_per_proc * 0.95, key

    # rings-only >= combined wherever rank order means locality; under
    # round-robin placement random can *beat* the rings (the paper's
    # own SR 8000 row shows 110 < 115) so that machine is exempt
    for (key, _n), res in by_key.items():
        if key == "sr8000":
            continue
        assert res.ring_only_at_lmax >= res.b_eff_at_lmax * 0.99, key

    # SR 8000: sequential placement wins big
    assert (
        by_key[("sr8000-seq", 24)].ring_only_at_lmax
        > 2 * by_key[("sr8000", 24)].ring_only_at_lmax
    )

    # vector machines lead the per-process ranking
    assert by_key[("sx5", 4)].b_eff_per_proc > by_key[("sv1", 15)].b_eff_per_proc
    assert by_key[("sx4", 16)].b_eff_per_proc > by_key[("t3e", 24)].b_eff_per_proc
