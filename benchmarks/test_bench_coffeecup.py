"""Sec. 2.2 — the coffee-cup rule and the communication/I/O gap.

The paper motivates b_eff_io with two numbers: communication moves
the T3E's total memory in ~3.2 s (b_eff) while a balanced system's
I/O should manage the same in ~10 minutes — communication is about
two orders of magnitude faster than I/O.

We regenerate both sides on the simulated T3E: the memory-transfer
time from b_eff and the I/O round trip from b_eff_io, and check the
gap is of the right order.
"""

import pytest

from benchmarks._harness import once, record
from repro.beff import MeasurementConfig
from repro.beffio import BeffIOConfig
from repro.machines import get_machine
from repro.util import GB, MB, format_time

PROCS = 16


def run_coffeecup():
    spec = get_machine("t3e")
    beff = spec.run_beff(PROCS, MeasurementConfig(backend="analytic"))
    beffio = spec.run_beffio(PROCS, BeffIOConfig(T=2.0, pattern_types=(0, 1, 2)))
    return spec, beff, beffio


@pytest.mark.benchmark(group="coffeecup")
def test_coffeecup(benchmark):
    spec, beff, beffio = once(benchmark, run_coffeecup)

    memory = spec.memory_per_proc * PROCS
    comm_time = beff.memory_transfer_time()
    io_time = memory / beffio.b_eff_io
    ratio = io_time / comm_time

    lines = [
        f"machine: {spec.name}, {PROCS} processes, total memory {memory / GB:.1f} GB",
        "",
        f"b_eff      = {beff.b_eff / MB:9.0f} MB/s -> memory communicated in {format_time(comm_time)}",
        f"b_eff_io   = {beffio.b_eff_io / MB:9.1f} MB/s -> memory written/read in {format_time(io_time)}",
        f"I/O is {ratio:.0f}x slower than communication",
        "",
        "paper Sec. 2.2: T3E-512 communicates its memory in 3.2 s; the",
        "coffee-cup rule asks I/O to manage it in ~10 min — a gap of",
        "about two orders of magnitude.  (At 16 PEs the aggregate",
        "communication bandwidth is smaller, so the measured gap is a",
        "bit below the 512-PE figure.)",
    ]
    record("coffeecup", "\n".join(lines))

    # the ordering and the order of magnitude
    assert comm_time < io_time
    assert ratio > 5  # at 512 PEs this grows towards the paper's ~100x
    # per-PE scaling check: the paper's 3.2 s at 512 PEs means the
    # per-PE memory (128 MB) moves in ~3 s at ~40 MB/s/PE
    per_pe_time = spec.memory_per_proc / beff.b_eff_per_proc
    assert 0.5 < per_pe_time < 10.0
