"""Fluid-engine scaling: incremental vs. reference wall-clock + fidelity.

The perf-regression harness for the incremental max-min engine
(`repro.sim.fluid`).  It measures the paper's hot loop — one DES round
of the densest random pattern, all processes communicating at once —
in both engine modes, asserts the incremental path is at least 5x
faster at 128 processes with bit-identical virtual timing, checks a
full b_eff run agrees between modes, micro-benchmarks the slotted
``Flow`` allocation rate, and commits everything to
``benchmarks/results/BENCH_fluid.json`` so future PRs can't silently
regress the speedup.

Wall-clock budgets here are deliberately loose (CI machines vary) but
real: the reference round at 128 procs costs seconds, the incremental
round must stay well under one.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import pytest

from benchmarks._harness import once, record, record_json
from repro.beff import MeasurementConfig, run_beff
from repro.beff.methods import step
from repro.beff.patterns import random_patterns
from repro.mpi.comm import World
from repro.net.model import Fabric, NetParams
from repro.sim.engine import Simulator
from repro.sim.fluid import Flow
from repro.topology import Torus
from repro.util import MB

#: target of the ISSUE's acceptance criterion
REQUIRED_SPEEDUP = 5.0
#: wall-clock budget for the incremental 128-proc round (CI smoke)
INCREMENTAL_BUDGET_S = 1.5

#: torus shapes per process count (T3E-like 3D torus, 300 MB/s links)
SHAPES = {16: (4, 2, 2), 32: (4, 4, 2), 64: (4, 4, 4), 128: (8, 4, 4)}
#: process count for the full-benchmark fidelity check (all 3 methods,
#: all 21 sizes; kept small so the reference oracle run stays CI-sized)
BEFF_PROCS = 16


def _make_fabric(nprocs: int, mode: str) -> Fabric:
    sim = Simulator()
    return Fabric(
        sim,
        Torus(SHAPES[nprocs], link_bw=300 * MB),
        NetParams(latency=10e-6),
        fluid_mode=mode,
    )


@dataclass
class RoundResult:
    wall_s: float
    virtual_s: float
    allocations: int
    flows_completed: int


def _time_round(nprocs: int, mode: str, nbytes: int = MB) -> RoundResult:
    """One DES round of the densest random pattern: barrier, all
    processes send to both ring neighbors (nonblocking), barrier."""
    fabric = _make_fabric(nprocs, mode)
    world = World(fabric)
    pattern = random_patterns(nprocs)[5]

    def program(comm):
        yield from comm.barrier()
        yield from step("nonblocking", comm, pattern, nbytes)
        yield from comm.barrier()

    t0 = time.perf_counter()
    world.run(program)
    wall = time.perf_counter() - t0
    return RoundResult(
        wall_s=wall,
        virtual_s=fabric.sim.now,
        allocations=fabric.flows.allocations,
        flows_completed=fabric.flows.flows_completed,
    )


def _flow_alloc_rate(cls, n: int = 200_000) -> float:
    """Instantiations per second of a Flow-like class (slots win probe)."""
    t0 = time.perf_counter()
    for i in range(n):
        cls(
            flow_id=i,
            route=(0, 1, 2),
            remaining=1.0,
            total_bytes=1.0,
            event=None,
        )
    return n / (time.perf_counter() - t0)


class _DictFlow:
    """The pre-__slots__ layout, kept only to quantify the slots win."""

    def __init__(self, flow_id, route, remaining, total_bytes, event):
        self.flow_id = flow_id
        self.route = route
        self.remaining = remaining
        self.total_bytes = total_bytes
        self.event = event
        self.rate = 0.0
        self.finish_time = math.inf
        self.private_link = None
        self.meta = None


def run_fluid_scaling() -> dict:
    payload: dict = {"rounds": [], "beff": {}, "flow_alloc": {}}

    for nprocs in sorted(SHAPES):
        ref = _time_round(nprocs, "reference")
        inc = _time_round(nprocs, "incremental")
        assert inc.flows_completed == ref.flows_completed
        assert inc.virtual_s == pytest.approx(ref.virtual_s, rel=1e-9)
        payload["rounds"].append(
            {
                "procs": nprocs,
                "reference_wall_s": round(ref.wall_s, 4),
                "incremental_wall_s": round(inc.wall_s, 4),
                "speedup": round(ref.wall_s / inc.wall_s, 2),
                "virtual_round_s": ref.virtual_s,
                "reference_allocations": ref.allocations,
                "incremental_allocations": inc.allocations,
            }
        )

    # full-benchmark fidelity: b_eff aggregates must match the oracle
    config = MeasurementConfig()
    results = {
        mode: run_beff(
            lambda mode=mode: _make_fabric(BEFF_PROCS, mode),
            memory_per_proc=16 * MB,
            config=config,
        )
        for mode in ("reference", "incremental")
    }
    ref_res, inc_res = results["reference"], results["incremental"]
    for field in ("b_eff", "b_eff_at_lmax", "logavg_ring", "logavg_random"):
        r, i = getattr(ref_res, field), getattr(inc_res, field)
        assert i == pytest.approx(r, rel=1e-9), field
    for name, r in ref_res.per_pattern.items():
        assert inc_res.per_pattern[name] == pytest.approx(r, rel=1e-9), name
    payload["beff"] = {
        "procs": BEFF_PROCS,
        "b_eff_reference_MBps": ref_res.b_eff / MB,
        "b_eff_incremental_MBps": inc_res.b_eff / MB,
        "logavg_ring_MBps": inc_res.logavg_ring / MB,
        "logavg_random_MBps": inc_res.logavg_random / MB,
        "max_rel_err": max(
            abs(inc_res.per_pattern[k] - v) / v for k, v in ref_res.per_pattern.items()
        ),
    }

    payload["flow_alloc"] = {
        "slotted_per_s": round(_flow_alloc_rate(Flow)),
        "dict_based_per_s": round(_flow_alloc_rate(_DictFlow)),
    }
    payload["flow_alloc"]["slots_speedup"] = round(
        payload["flow_alloc"]["slotted_per_s"] / payload["flow_alloc"]["dict_based_per_s"], 2
    )
    return payload


@pytest.mark.benchmark(group="fluid-scaling")
def test_fluid_scaling(benchmark):
    payload = once(benchmark, run_fluid_scaling)
    record_json("BENCH_fluid", payload)
    lines = [
        f"{'procs':>6s} {'reference':>12s} {'incremental':>12s} {'speedup':>8s}"
    ]
    for row in payload["rounds"]:
        lines.append(
            f"{row['procs']:6d} {row['reference_wall_s']:11.3f}s"
            f" {row['incremental_wall_s']:11.3f}s {row['speedup']:7.1f}x"
        )
    lines.append(
        f"b_eff({BEFF_PROCS}, DES) ref vs inc: {payload['beff']['b_eff_reference_MBps']:.3f}"
        f" / {payload['beff']['b_eff_incremental_MBps']:.3f} MB/s"
        f" (max pattern rel err {payload['beff']['max_rel_err']:.2e})"
    )
    lines.append(
        f"Flow alloc: {payload['flow_alloc']['slotted_per_s']:,} /s slotted vs"
        f" {payload['flow_alloc']['dict_based_per_s']:,} /s dict"
        f" ({payload['flow_alloc']['slots_speedup']}x)"
    )
    record("fluid_scaling", "\n".join(lines))

    big = next(r for r in payload["rounds"] if r["procs"] == 128)
    # the ISSUE's acceptance bar: >= 5x at 128 procs, identical results
    assert big["speedup"] >= REQUIRED_SPEEDUP, big
    # wall-clock budget: perf regressions in the incremental path fail here
    assert big["incremental_wall_s"] <= INCREMENTAL_BUDGET_S, big
    # batching must collapse the per-start allocations by an order of magnitude
    assert big["incremental_allocations"] * 10 <= big["reference_allocations"], big
    # slotted Flow must not allocate meaningfully slower than the
    # dict-based layout (small margin: the probe is timer-noise prone)
    assert payload["flow_alloc"]["slots_speedup"] >= 0.9
