"""Fluid-engine scaling: incremental vs. reference wall-clock + fidelity.

The perf-regression harness for the fluid max-min engines.  Four
measurement families, all committed to
``benchmarks/results/BENCH_fluid.json`` so future PRs can't silently
regress them (``benchmarks/check_regression.py`` gates the speedups):

* **rounds** — one DES round of the densest random pattern in both
  engine modes at 16-128 procs; the incremental path must stay >= 5x
  at 128 with bit-identical virtual timing.
* **headline** — the same 128-proc random round priced across all 21
  message sizes: the vectorized plan path (CSR incidence +
  size-independent phase plans, ``repro.beff.analytic``) vs. the
  incremental DES engine round by round; must be >= 10x.
* **ff** — a paper-fidelity timed repetition loop (ring pattern,
  looplength 300) with and without the b_eff orbit fast-forward
  (``repro.beff.fastforward``); the measured loop time must be
  ``float.hex``-identical and the wall clock several times faster.
* **large** — 4k/16k/65k-rank torus entries through the vectorized
  plan path (pure DES is event-bound far earlier; see
  ``docs/performance.md``).  Opt-in via ``REPRO_BENCH_LARGE=4k|all``
  because the biggest entries cost minutes: the regular CI smoke
  skips them, the large-rank CI job runs the ``4k`` level, and the
  committed baseline is recorded with ``all``.

Wall-clock budgets here are deliberately loose (CI machines vary) but
real: the reference round at 128 procs costs seconds, the incremental
round must stay well under two.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

import numpy as np
import pytest

from benchmarks._harness import once, record, record_json
from repro.beff import MeasurementConfig, run_beff
from repro.beff.analytic import RoundModel
from repro.beff.fastforward import FastForwardSession
from repro.beff.methods import step
from repro.beff.patterns import random_patterns, ring_patterns
from repro.beff.sizes import message_sizes
from repro.mpi.comm import World
from repro.net.model import Fabric, NetParams
from repro.sim.engine import Simulator
from repro.sim.fluid import Flow
from repro.sim.kernel import RouteIncidence
from repro.sim.process import SleepUntil
from repro.topology import Torus
from repro.util import MB

#: target of the ISSUE's acceptance criterion
REQUIRED_SPEEDUP = 5.0
#: the vectorized plan path must price the 128-proc random round this
#: much faster than the incremental DES engine (21-size sweep)
REQUIRED_FAST_SPEEDUP = 10.0
#: wall-clock floor for the orbit fast-forward on the paper-fidelity
#: timed loop (measured ~8x here; the loop re-proves the orbit after
#: every binade crossing, so ~log2(looplength) windows stay live)
REQUIRED_FF_SPEEDUP = 3.0
#: wall-clock budget for the incremental 128-proc round (CI smoke)
INCREMENTAL_BUDGET_S = 1.5

#: torus shapes per process count (T3E-like 3D torus, 300 MB/s links)
SHAPES = {
    16: (4, 2, 2),
    32: (4, 4, 2),
    64: (4, 4, 4),
    128: (8, 4, 4),
    4096: (16, 16, 16),
    16384: (32, 16, 32),
    65536: (32, 32, 64),
}
#: process counts for the reference-vs-incremental DES rounds (the
#: reference oracle is event-bound well before the large shapes)
ROUND_PROCS = (16, 32, 64, 128)
#: process count for the full-benchmark fidelity check (all 3 methods,
#: all 21 sizes; kept small so the reference oracle run stays CI-sized)
BEFF_PROCS = 16
#: paper-fidelity looplength for the fast-forward entry
FF_LOOPLENGTH = 300


def _make_fabric(nprocs: int, mode: str) -> Fabric:
    sim = Simulator()
    return Fabric(
        sim,
        Torus(SHAPES[nprocs], link_bw=300 * MB),
        NetParams(latency=10e-6),
        fluid_mode=mode,
    )


@dataclass
class RoundResult:
    wall_s: float
    virtual_s: float
    allocations: int
    flows_completed: int


def _time_round(nprocs: int, mode: str, nbytes: int = MB) -> RoundResult:
    """One DES round of the densest random pattern: barrier, all
    processes send to both ring neighbors (nonblocking), barrier."""
    fabric = _make_fabric(nprocs, mode)
    world = World(fabric)
    pattern = random_patterns(nprocs)[5]

    def program(comm):
        yield from comm.barrier()
        yield from step("nonblocking", comm, pattern, nbytes)
        yield from comm.barrier()

    t0 = time.perf_counter()
    world.run(program)
    wall = time.perf_counter() - t0
    return RoundResult(
        wall_s=wall,
        virtual_s=fabric.sim.now,
        allocations=fabric.flows.allocations,
        flows_completed=fabric.flows.flows_completed,
    )


def _headline_sweep(nprocs: int = 128) -> dict:
    """The 128-proc random round priced across all 21 message sizes.

    Incremental DES side: one engine round per size, exactly the
    committed ``rounds`` measurement repeated over the size grid.
    Fast side: a cold :class:`RoundModel` — route resolution, CSR
    incidence build and the capped max-min solve included — then one
    vectorized evaluation per size.  The plans are size-independent,
    so the whole sweep costs one allocation; that is the design the
    speedup assertion pins.
    """
    sizes = message_sizes(128 * MB, 64)  # L_max = 1 MB
    t0 = time.perf_counter()
    for size in sizes:
        _time_round(nprocs, "incremental", nbytes=size)
    incremental_wall = time.perf_counter() - t0

    fabric = _make_fabric(nprocs, "incremental")
    pattern = random_patterns(nprocs)[5]
    t0 = time.perf_counter()
    model = RoundModel(fabric)
    fast_times = [model.round_time(pattern, size, "nonblocking") for size in sizes]
    fast_wall = time.perf_counter() - t0
    return {
        "procs": nprocs,
        "pattern": pattern.name,
        "method": "nonblocking",
        "sizes": len(sizes),
        "incremental_wall_s": round(incremental_wall, 4),
        "fast_wall_s": round(fast_wall, 4),
        "speedup": round(incremental_wall / fast_wall, 2),
        "round_time_at_1mb_s": fast_times[sizes.index(MB)],
    }


def _ff_timed_loop(nprocs: int, use_ff: bool, nbytes: int = MB) -> dict:
    """One paper-fidelity timed repetition loop (ring-1, sendrecv).

    Mirrors ``beff.benchmark._run_des``'s timed loop exactly: barrier,
    clock read, ``looplength`` repetitions (with the orbit
    fast-forward's boundary protocol when ``use_ff``), allreduced
    maximum elapsed time.
    """
    fabric = _make_fabric(nprocs, "incremental")
    world = World(fabric)
    pattern = ring_patterns(nprocs)[0]
    method = "sendrecv"
    ff = FastForwardSession(fabric, nprocs) if use_ff else None
    out: dict = {}

    def program(comm):
        yield from comm.barrier()
        t0 = comm.wtime()
        if ff is None:
            for _ in range(FF_LOOPLENGTH):
                yield from step(method, comm, pattern, nbytes)
        else:
            loop = ff.loop_for((pattern.name, nbytes, method, 0), FF_LOOPLENGTH)
            reps = 0
            while reps < FF_LOOPLENGTH:
                yield from step(method, comm, pattern, nbytes)
                reps += 1
                if reps == FF_LOOPLENGTH:
                    break
                skip = loop.boundary(comm.rank, reps, comm.wtime())
                if skip is not None:
                    target, landing = skip
                    yield SleepUntil(target)
                    reps = landing
            loop.finish()
        local = comm.wtime() - t0
        elapsed = yield from comm.allreduce(8, local, max)
        if comm.rank == 0:
            out["elapsed"] = elapsed

    t0 = time.perf_counter()
    world.run(program)
    out["wall_s"] = time.perf_counter() - t0
    out["loops_armed"] = ff.loops_armed if ff else 0
    out["reps_skipped"] = ff.reps_skipped if ff else 0
    return out


def _ff_entry(nprocs: int = 128) -> dict:
    fast = _ff_timed_loop(nprocs, use_ff=True)
    ref = _ff_timed_loop(nprocs, use_ff=False)
    return {
        "procs": nprocs,
        "pattern": "ring-1",
        "method": "sendrecv",
        "looplength": FF_LOOPLENGTH,
        "fast_wall_s": round(fast["wall_s"], 4),
        "reference_wall_s": round(ref["wall_s"], 4),
        "speedup": round(ref["wall_s"] / fast["wall_s"], 2),
        "loops_armed": fast["loops_armed"],
        "reps_skipped": fast["reps_skipped"],
        "bit_identical": fast["elapsed"].hex() == ref["elapsed"].hex(),
        "loop_time_s": ref["elapsed"],
    }


def _analytic_round_sweep(nprocs: int) -> dict:
    """All 21 sizes of the densest random pattern via the plan path."""
    fabric = _make_fabric(nprocs, "incremental")
    pattern = random_patterns(nprocs)[5]
    sizes = message_sizes(128 * MB, 64)  # L_max = 1 MB
    t0 = time.perf_counter()
    model = RoundModel(fabric)
    times = [model.round_time(pattern, s, "nonblocking") for s in sizes]
    wall = time.perf_counter() - t0
    return {
        "kind": "analytic-round-sweep",
        "procs": nprocs,
        "pattern": pattern.name,
        "sizes": len(sizes),
        "wall_s": round(wall, 2),
        "round_time_at_1mb_s": times[sizes.index(MB)],
    }


def _analytic_full_matrix(nprocs: int) -> dict:
    """The full 12-pattern x 21-size x 3-method b_eff table, analytic."""
    t0 = time.perf_counter()
    result = run_beff(
        lambda: _make_fabric(nprocs, "incremental"),
        memory_per_proc=16 * MB,
        config=MeasurementConfig(backend="analytic"),
    )
    wall = time.perf_counter() - t0
    return {
        "kind": "analytic-full-matrix",
        "procs": nprocs,
        "wall_s": round(wall, 2),
        "b_eff_MBps": result.b_eff / MB,
        "b_eff_per_proc_MBps": result.b_eff_per_proc / MB,
        "engine_mode": result.engine_mode,
    }


def _kernel_solve_entry(nprocs: int) -> dict:
    """Raw CSR kernel at full-machine scale: one max-min solve of the
    densest random pattern's 2n flows (the unit of work every plan and
    every large DES component dispatches to)."""
    fabric = _make_fabric(nprocs, "incremental")
    pattern = random_patterns(nprocs)[5]
    pairs = []
    for ring in pattern.rings:
        k = len(ring)
        for i, rank in enumerate(ring):
            pairs.append((rank, ring[(i - 1) % k]))
            pairs.append((rank, ring[(i + 1) % k]))
    t0 = time.perf_counter()
    routes = [fabric.topology.route(s, d).links for s, d in pairs]
    route_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    incidence = RouteIncidence(routes)
    caps = np.asarray(
        [fabric.flows.link(link).capacity for link in incidence.link_ids],
        dtype=np.float64,
    )
    rates = incidence.solve(caps)
    solve_wall = time.perf_counter() - t0
    return {
        "kind": "kernel-solve",
        "procs": nprocs,
        "flows": incidence.n_flows,
        "links": incidence.n_links,
        "nnz": int(len(incidence.flow_cols)),
        "route_wall_s": round(route_wall, 2),
        "solve_wall_s": round(solve_wall, 2),
        "min_rate_MBps": float(rates.min()) / MB,
    }


def _flow_alloc_rate(cls, n: int = 200_000) -> float:
    """Instantiations per second of a Flow-like class (slots win probe)."""
    t0 = time.perf_counter()
    for i in range(n):
        cls(
            flow_id=i,
            route=(0, 1, 2),
            remaining=1.0,
            total_bytes=1.0,
            event=None,
        )
    return n / (time.perf_counter() - t0)


class _DictFlow:
    """The pre-__slots__ layout, kept only to quantify the slots win."""

    def __init__(self, flow_id, route, remaining, total_bytes, event):
        self.flow_id = flow_id
        self.route = route
        self.remaining = remaining
        self.total_bytes = total_bytes
        self.event = event
        self.rate = 0.0
        self.finish_time = math.inf
        self.private_link = None
        self.meta = None


def _large_entries(level: str) -> list[dict]:
    """The 4k-65k entries; ``level`` is ``""``, ``"4k"`` or ``"all"``."""
    if not level:
        return []
    entries = [_analytic_round_sweep(4096)]
    if level == "all":
        entries.append(_analytic_full_matrix(4096))
        entries.append(_analytic_round_sweep(16384))
        entries.append(_kernel_solve_entry(65536))
    return entries


def run_fluid_scaling() -> dict:
    payload: dict = {"rounds": [], "beff": {}, "flow_alloc": {}}

    for nprocs in ROUND_PROCS:
        ref = _time_round(nprocs, "reference")
        inc = _time_round(nprocs, "incremental")
        assert inc.flows_completed == ref.flows_completed
        assert inc.virtual_s == pytest.approx(ref.virtual_s, rel=1e-9)
        payload["rounds"].append(
            {
                "procs": nprocs,
                "reference_wall_s": round(ref.wall_s, 4),
                "incremental_wall_s": round(inc.wall_s, 4),
                "speedup": round(ref.wall_s / inc.wall_s, 2),
                "virtual_round_s": ref.virtual_s,
                "reference_allocations": ref.allocations,
                "incremental_allocations": inc.allocations,
            }
        )

    # full-benchmark fidelity: b_eff aggregates must match the oracle
    config = MeasurementConfig()
    results = {
        mode: run_beff(
            lambda mode=mode: _make_fabric(BEFF_PROCS, mode),
            memory_per_proc=16 * MB,
            config=config,
        )
        for mode in ("reference", "incremental")
    }
    ref_res, inc_res = results["reference"], results["incremental"]
    for field in ("b_eff", "b_eff_at_lmax", "logavg_ring", "logavg_random"):
        r, i = getattr(ref_res, field), getattr(inc_res, field)
        assert i == pytest.approx(r, rel=1e-9), field
    for name, r in ref_res.per_pattern.items():
        assert inc_res.per_pattern[name] == pytest.approx(r, rel=1e-9), name
    payload["beff"] = {
        "procs": BEFF_PROCS,
        "b_eff_reference_MBps": ref_res.b_eff / MB,
        "b_eff_incremental_MBps": inc_res.b_eff / MB,
        "logavg_ring_MBps": inc_res.logavg_ring / MB,
        "logavg_random_MBps": inc_res.logavg_random / MB,
        "max_rel_err": max(
            abs(inc_res.per_pattern[k] - v) / v for k, v in ref_res.per_pattern.items()
        ),
    }

    payload["flow_alloc"] = {
        "slotted_per_s": round(_flow_alloc_rate(Flow)),
        "dict_based_per_s": round(_flow_alloc_rate(_DictFlow)),
    }
    payload["flow_alloc"]["slots_speedup"] = round(
        payload["flow_alloc"]["slotted_per_s"] / payload["flow_alloc"]["dict_based_per_s"], 2
    )

    payload["headline"] = _headline_sweep()
    payload["ff"] = _ff_entry()
    large = _large_entries(os.environ.get("REPRO_BENCH_LARGE", ""))
    if large:
        payload["large"] = large
    return payload


@pytest.mark.benchmark(group="fluid-scaling")
def test_fluid_scaling(benchmark):
    payload = once(benchmark, run_fluid_scaling)
    record_json("BENCH_fluid", payload)
    lines = [
        f"{'procs':>6s} {'reference':>12s} {'incremental':>12s} {'speedup':>8s}"
    ]
    for row in payload["rounds"]:
        lines.append(
            f"{row['procs']:6d} {row['reference_wall_s']:11.3f}s"
            f" {row['incremental_wall_s']:11.3f}s {row['speedup']:7.1f}x"
        )
    lines.append(
        f"b_eff({BEFF_PROCS}, DES) ref vs inc: {payload['beff']['b_eff_reference_MBps']:.3f}"
        f" / {payload['beff']['b_eff_incremental_MBps']:.3f} MB/s"
        f" (max pattern rel err {payload['beff']['max_rel_err']:.2e})"
    )
    lines.append(
        f"Flow alloc: {payload['flow_alloc']['slotted_per_s']:,} /s slotted vs"
        f" {payload['flow_alloc']['dict_based_per_s']:,} /s dict"
        f" ({payload['flow_alloc']['slots_speedup']}x)"
    )
    head = payload["headline"]
    lines.append(
        f"headline({head['procs']}, {head['sizes']} sizes): incremental"
        f" {head['incremental_wall_s']:.2f}s vs plan {head['fast_wall_s']:.3f}s"
        f" ({head['speedup']}x)"
    )
    ff = payload["ff"]
    lines.append(
        f"ff({ff['procs']}, {ff['pattern']}/{ff['method']} x{ff['looplength']}):"
        f" {ff['reference_wall_s']:.2f}s -> {ff['fast_wall_s']:.2f}s"
        f" ({ff['speedup']}x, {ff['reps_skipped']} reps skipped,"
        f" bit_identical={ff['bit_identical']})"
    )
    for entry in payload.get("large", []):
        lines.append(f"large: {entry}")
    record("fluid_scaling", "\n".join(lines))

    big = next(r for r in payload["rounds"] if r["procs"] == 128)
    # the ISSUE's acceptance bar: >= 5x at 128 procs, identical results
    assert big["speedup"] >= REQUIRED_SPEEDUP, big
    # wall-clock budget: perf regressions in the incremental path fail here
    assert big["incremental_wall_s"] <= INCREMENTAL_BUDGET_S, big
    # batching must collapse the per-start allocations by an order of magnitude
    assert big["incremental_allocations"] * 10 <= big["reference_allocations"], big
    # slotted Flow must not allocate meaningfully slower than the
    # dict-based layout (small margin: the probe is timer-noise prone)
    assert payload["flow_alloc"]["slots_speedup"] >= 0.9
    # the vectorized plan path must beat the incremental engine >= 10x
    # on the 128-proc random-round headline (21-size sweep)
    assert head["speedup"] >= REQUIRED_FAST_SPEEDUP, head
    # the orbit fast-forward must arm, skip most repetitions, keep the
    # measured loop time float.hex-identical, and win wall-clock
    assert ff["loops_armed"] > 0 and ff["bit_identical"], ff
    assert ff["reps_skipped"] >= FF_LOOPLENGTH // 2, ff
    assert ff["speedup"] >= REQUIRED_FF_SPEEDUP, ff
