"""Setuptools shim; all metadata lives in pyproject.toml.

Kept so the package installs in environments without the ``wheel``
package (pip falls back to ``setup.py develop`` with
``--no-use-pep517``).
"""
from setuptools import setup

setup()
